open Evm

type stmt = { pc : int; text : string; reads_calldata : bool }
type lifted_fn = { selector_hex : string; entry_pc : int; stmts : stmt list }

(* Lift one basic block with an abstract stack of register names;
   values entering the block are named by their stack depth. This is
   the classic per-block value-numbering lifter: enough fidelity for
   the readability metrics of §6.3. *)
let lift_block (block : Cfg.block) ~fresh =
  let stack = ref [] in
  let stmts = ref [] in
  let pop () =
    match !stack with
    | v :: rest ->
      stack := rest;
      v
    | [] ->
      let v = fresh "in" in
      v
  in
  let push v = stack := v :: !stack in
  let emit pc ?(cd = false) text =
    stmts := { pc; text; reads_calldata = cd } :: !stmts
  in
  List.iter
    (fun { Disasm.offset = pc; op } ->
      match op with
      | Opcode.PUSH (_, v) -> push ("0x" ^ U256.to_hex v)
      | Opcode.DUP n -> (
        match List.nth_opt !stack (n - 1) with
        | Some v -> push v
        | None -> push (fresh "in"))
      | Opcode.SWAP n ->
        let arr = Array.of_list !stack in
        if Array.length arr > n then begin
          let tmp = arr.(0) in
          arr.(0) <- arr.(n);
          arr.(n) <- tmp;
          stack := Array.to_list arr
        end
      | Opcode.POP -> ignore (pop ())
      | Opcode.JUMPDEST -> ()
      | Opcode.CALLDATALOAD ->
        let loc = pop () in
        let r = fresh "v" in
        emit pc ~cd:true (Printf.sprintf "%s = calldata[%s]" r loc);
        push r
      | Opcode.CALLDATACOPY ->
        let dst = pop () in
        let src = pop () in
        let len = pop () in
        emit pc ~cd:true
          (Printf.sprintf "memcpy(mem[%s], calldata[%s], %s)" dst src len)
      | Opcode.MLOAD ->
        let loc = pop () in
        let r = fresh "v" in
        emit pc (Printf.sprintf "%s = mem[%s]" r loc);
        push r
      | Opcode.MSTORE ->
        let loc = pop () in
        let v = pop () in
        emit pc (Printf.sprintf "mem[%s] = %s" loc v)
      | Opcode.SLOAD ->
        let k = pop () in
        let r = fresh "v" in
        emit pc (Printf.sprintf "%s = storage[%s]" r k);
        push r
      | Opcode.SSTORE ->
        let k = pop () in
        let v = pop () in
        emit pc (Printf.sprintf "storage[%s] = %s" k v)
      | Opcode.JUMP ->
        let t = pop () in
        emit pc (Printf.sprintf "goto %s" t)
      | Opcode.JUMPI ->
        let t = pop () in
        let c = pop () in
        emit pc (Printf.sprintf "if %s goto %s" c t)
      | Opcode.STOP -> emit pc "stop"
      | Opcode.RETURN ->
        let o = pop () in
        let l = pop () in
        emit pc (Printf.sprintf "return mem[%s..+%s]" o l)
      | Opcode.REVERT ->
        let o = pop () in
        let l = pop () in
        emit pc (Printf.sprintf "revert mem[%s..+%s]" o l)
      | Opcode.INVALID -> emit pc "invalid"
      | op -> (
        let consumed, produced = Opcode.stack_arity op in
        let args = List.init consumed (fun _ -> pop ()) in
        if produced = 0 then
          emit pc
            (Printf.sprintf "%s(%s)" (Opcode.mnemonic op)
               (String.concat ", " args))
        else begin
          let r = fresh "v" in
          emit pc
            (Printf.sprintf "%s = %s(%s)" r (Opcode.mnemonic op)
               (String.concat ", " args));
          push r
        end))
    block.Cfg.instrs;
  List.rev !stmts

(* Body blocks of a function: reachable blocks from the entry, stopping
   at blocks owned by other dispatch entries. *)
let body_blocks cfg ~entry ~other_entries =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go start =
    if not (Hashtbl.mem seen start) && not (List.mem start other_entries)
    then begin
      Hashtbl.replace seen start ();
      match Cfg.block_at cfg start with
      | None -> ()
      | Some b ->
        out := b :: !out;
        List.iter (fun s -> go s.Cfg.start) (Cfg.successors cfg b)
    end
  in
  go entry;
  List.sort (fun a b -> compare a.Cfg.start b.Cfg.start) !out

let lift bytecode =
  let entries = Sigrec.Ids.extract bytecode in
  let cfg = Cfg.build bytecode in
  let all_entry_pcs = List.map (fun e -> e.Sigrec.Ids.entry_pc) entries in
  List.map
    (fun e ->
      let counter = ref 0 in
      let fresh prefix =
        incr counter;
        Printf.sprintf "%s%d" prefix !counter
      in
      let others =
        List.filter (fun pc -> pc <> e.Sigrec.Ids.entry_pc) all_entry_pcs
      in
      let blocks =
        body_blocks cfg ~entry:e.Sigrec.Ids.entry_pc ~other_entries:others
      in
      let stmts = List.concat_map (fun b -> lift_block b ~fresh) blocks in
      {
        selector_hex = Evm.Hex.encode e.Sigrec.Ids.selector;
        entry_pc = e.Sigrec.Ids.entry_pc;
        stmts;
      })
    entries

let line_count fn = List.length fn.stmts
