open Evm

type verdict = Valid | Invalid of string

let ( let* ) r f = match r with Valid -> f () | Invalid _ as e -> e

let byte_at data off =
  if off < String.length data then Char.code data.[off] else 0

let word_at data off =
  U256.of_bytes_be
    (String.init 32 (fun i ->
         if off + i < String.length data then data.[off + i] else '\000'))

(* Validate a 32-byte word holding a static basic value. *)
let check_basic ty data off =
  let w = word_at data off in
  match ty with
  | Abi.Abity.Uint m ->
    if U256.bits w <= m then Valid
    else Invalid (Printf.sprintf "uint%d at %d: nonzero padding" m off)
  | Abi.Abity.Int m ->
    let trunc = U256.signextend ((m / 8) - 1) w in
    if U256.equal trunc w then Valid
    else Invalid (Printf.sprintf "int%d at %d: bad sign extension" m off)
  | Abi.Abity.Address ->
    if U256.bits w <= 160 then Valid
    else Invalid (Printf.sprintf "address at %d: nonzero high bytes" off)
  | Abi.Abity.Bool ->
    if U256.is_zero w || U256.equal w U256.one then Valid
    else Invalid (Printf.sprintf "bool at %d: not 0 or 1" off)
  | Abi.Abity.Bytes_n m ->
    if U256.is_zero (U256.logand w (U256.ones_low (32 - m))) then Valid
    else Invalid (Printf.sprintf "bytes%d at %d: nonzero padding" m off)
  | Abi.Abity.Decimal ->
    let trunc = U256.signextend 20 w in
    if U256.equal trunc w then Valid
    else Invalid (Printf.sprintf "decimal at %d: out of range" off)
  | _ -> Valid

let rec check_value ty data off =
  (* [off] is the absolute offset of the value's encoding start *)
  match ty with
  | Abi.Abity.Uint _ | Abi.Abity.Int _ | Abi.Abity.Address | Abi.Abity.Bool
  | Abi.Abity.Bytes_n _ | Abi.Abity.Decimal ->
    check_basic ty data off
  | Abi.Abity.Bytes | Abi.Abity.String_t | Abi.Abity.Vbytes _
  | Abi.Abity.Vstring _ -> (
    match U256.to_int (word_at data off) with
    | None -> Invalid (Printf.sprintf "length at %d: absurd" off)
    | Some len ->
      if off + 32 + len > String.length data then
        Invalid (Printf.sprintf "bytes at %d: content truncated" off)
      else begin
        (* right padding to a 32-byte multiple must be zero *)
        let padded = (len + 31) / 32 * 32 in
        let ok = ref true in
        for i = len to padded - 1 do
          if byte_at data (off + 32 + i) <> 0 then ok := false
        done;
        (match ty with
        | Abi.Abity.Vbytes max | Abi.Abity.Vstring max ->
          if len > max then ok := false
        | _ -> ());
        if !ok then Valid
        else Invalid (Printf.sprintf "bytes at %d: nonzero padding" off)
      end)
  | Abi.Abity.Darray elem -> (
    match U256.to_int (word_at data off) with
    | None -> Invalid (Printf.sprintf "num at %d: absurd" off)
    | Some n ->
      if n > 0x10000 then Invalid (Printf.sprintf "num at %d: absurd" off)
      else check_seq (List.init n (fun _ -> elem)) data (off + 32))
  | Abi.Abity.Sarray (elem, n) ->
    check_seq (List.init n (fun _ -> elem)) data off
  | Abi.Abity.Tuple tys -> check_seq tys data off

(* Validate a head/tail sequence starting at absolute offset [base]. *)
and check_seq tys data base =
  let rec go tys head_off =
    match tys with
    | [] -> Valid
    | ty :: rest ->
      let* () =
        if Abi.Abity.is_dynamic ty then begin
          match U256.to_int (word_at data head_off) with
          | None -> Invalid (Printf.sprintf "offset at %d: absurd" head_off)
          | Some rel ->
            if rel mod 32 <> 0 then
              Invalid (Printf.sprintf "offset at %d: misaligned" head_off)
            else if base + rel >= String.length data + 32 then
              Invalid (Printf.sprintf "offset at %d: out of range" head_off)
            else check_value ty data (base + rel)
        end
        else check_value ty data head_off
      in
      go rest (head_off + Abi.Abity.head_size ty)
  in
  go tys base

let static_args_size params =
  List.fold_left (fun acc ty -> acc + Abi.Abity.head_size ty) 0 params

let check_args params args =
  let need = static_args_size params in
  if String.length args < need then
    Invalid
      (Printf.sprintf "call data too short: %d < %d" (String.length args)
         need)
  else check_seq params args 0

let check_call params calldata =
  if String.length calldata < 4 then Invalid "no function id"
  else
    check_args params (String.sub calldata 4 (String.length calldata - 4))

(* The §6.1 short-address check: the arguments are shorter than the
   static layout and the tail of the last 32-byte word is zero — EVM
   would complement the short address from the next argument's high
   bytes, shifting the value left. *)
let is_short_address_attack params calldata =
  let rec ends_addr_uint = function
    | [ Abi.Abity.Address; Abi.Abity.Uint 256 ] -> true
    | _ :: rest -> ends_addr_uint rest
    | [] -> false
  in
  if not (ends_addr_uint params) then false
  else begin
    let args_len = String.length calldata - 4 in
    let need = static_args_size params in
    if args_len >= need || args_len <= need - 32 then false
    else begin
      (* the [missing] low-order address bytes would be complemented
         from the following uint256's high bytes, which the attacker
         supplies as zero; the value argument is then shifted left *)
      let missing = need - args_len in
      let last = word_at calldata (4 + args_len - 32) in
      U256.is_zero
        (U256.shift_right last (8 * (32 - Stdlib.min missing 31)))
      |> fun tail_is_zero -> tail_is_zero || missing <= 3
    end
  end

type tx_label = Ok_tx | Short_address | Bad_padding | Truncated

type tx = { fsig : Abi.Funsig.t; calldata : string; label : tx_label }

let gen_tx_stream ~seed ~n sigs =
  let rng = Random.State.make [| seed; 0x9a5c |] in
  let sigs = Array.of_list sigs in
  let transferish =
    Array.to_list sigs
    |> List.filter (fun f ->
           (not (List.exists Abi.Abity.is_dynamic f.Abi.Funsig.params))
           &&
           match List.rev f.Abi.Funsig.params with
           | Abi.Abity.Uint 256 :: Abi.Abity.Address :: _ -> true
           | _ -> false)
  in
  List.init n (fun _ ->
      let fsig = sigs.(Random.State.int rng (Array.length sigs)) in
      let encode f =
        let args =
          List.map (Abi.Valgen.value rng) f.Abi.Funsig.params
        in
        Abi.Encode.encode_call ~selector:(Abi.Funsig.selector f)
          f.Abi.Funsig.params args
      in
      let roll = Random.State.int rng 1000 in
      if roll < 989 then { fsig; calldata = encode fsig; label = Ok_tx }
      else if roll < 993 && transferish <> [] then begin
        (* short address attack: drop trailing zero bytes of the
           address argument *)
        let f = List.nth transferish (Random.State.int rng (List.length transferish)) in
        let cd = Bytes.of_string (encode f) in
        let dropped = 1 + Random.State.int rng 3 in
        (* the attacker picks an address ending in zero bytes and omits
           them from the call data *)
        let addr_slot = String.length (Bytes.to_string cd) - 64 in
        for i = 1 to dropped do
          Bytes.set cd (addr_slot + 32 - i) '\000'
        done;
        let cd = Bytes.to_string cd in
        let cd = String.sub cd 0 (String.length cd - dropped) in
        { fsig = f; calldata = cd; label = Short_address }
      end
      else if roll < 997 then begin
        (* nonzero padding byte in a static slot *)
        let cd = Bytes.of_string (encode fsig) in
        if Bytes.length cd > 10 then
          Bytes.set cd (4 + Random.State.int rng 8) '\xff';
        { fsig; calldata = Bytes.to_string cd; label = Bad_padding }
      end
      else begin
        let cd = encode fsig in
        let keep = Stdlib.max 4 (String.length cd - 32) in
        { fsig; calldata = String.sub cd 0 keep; label = Truncated }
      end)
