(** Behavioural models of the five competitor tools of §5.6.

    OSD, EBD and JEB are database-lookup tools over (differently
    incomplete) copies of EFSD. Eveem adds simple mask-window heuristics
    when the database misses. Gigahorse combines a database with its own
    pattern analysis and exhibits the error modes the paper documents:
    occasional aborts, merged consecutive parameters reported with
    nonexistent widths, and missed array structure. All heuristic paths
    read only the bytecode — never the ground truth. *)

type outcome =
  | Recovered of Abi.Abity.t list
  | Not_recovered
  | Aborted

type t = {
  name : string;
  run : bytecode:string -> selector:string -> outcome;
}

val osd : Efsd.t -> t
val ebd : Efsd.t -> t
val jeb : Efsd.t -> t
val eveem : Efsd.t -> t
val gigahorse : Efsd.t -> t

val eveem_heuristic : bytecode:string -> selector:string -> outcome
(** The rule-based fallback alone (used on dataset 2, where no
    synthesized signature is in any database). *)

val gigahorse_heuristic : bytecode:string -> selector:string -> outcome

val outcome_matches : outcome -> Abi.Abity.t list -> bool
