open Evm

type mode = Signature_aware of Abi.Abity.t list | Raw

type campaign_result = {
  bug_found : bool;
  executions : int;
  first_hit : int option;
}

let dictionary code =
  List.filter_map
    (fun i ->
      match i.Disasm.op with
      | Opcode.PUSH (n, v) when n >= 4 -> Some v
      | _ -> None)
    (Disasm.disassemble code)

(* Inject a dictionary word into a typed value, coerced to the type's
   width — the standard magic-constant mutation. *)
let coerce_to ty word =
  match ty with
  | Abi.Abity.Uint m -> Abi.Value.VUint (U256.logand word (U256.ones_low (m / 8)))
  | Abi.Abity.Int m ->
    Abi.Value.VInt (U256.signextend ((m / 8) - 1) word)
  | Abi.Abity.Address ->
    Abi.Value.VAddr (U256.logand word (U256.ones_low 20))
  | Abi.Abity.Bool -> Abi.Value.VBool (not (U256.is_zero word))
  | Abi.Abity.Bytes_n m ->
    (* bytesM values live in the high-order bytes of the word *)
    Abi.Value.VFixed (String.sub (U256.to_bytes_be word) 0 m)
  | _ -> Abi.Value.VUint word

let typed_input rng ~dict tys =
  List.map
    (fun ty ->
      match dict with
      | w :: _ when Abi.Abity.is_basic ty && Random.State.int rng 100 < 50 ->
        let w =
          if List.length dict = 1 || Random.State.bool rng then w
          else List.nth dict (Random.State.int rng (List.length dict))
        in
        coerce_to ty w
      | _ -> Abi.Valgen.value rng ty)
    tys

let raw_input rng selector =
  (* the paper's ContractFuzzer- regards the parameter list as a byte
     sequence and generates random bytes *)
  let len = Random.State.int rng 260 in
  selector ^ String.init len (fun _ -> Char.chr (Random.State.int rng 256))

let run_campaign ?(budget = 96) ~rng ~code ~selector mode =
  let dict = dictionary code in
  let executions = ref 0 and first_hit = ref None in
  (try
     for i = 1 to budget do
       incr executions;
       let calldata =
         match mode with
         | Signature_aware tys ->
           let args = typed_input rng ~dict tys in
           Abi.Encode.encode_call ~selector tys args
         | Raw -> raw_input rng selector
       in
       let res = Interp.execute ~gas_limit:500_000 ~code ~calldata () in
       if res.Interp.outcome = Interp.Invalid_op then begin
         first_hit := Some i;
         raise Exit
       end
     done
   with Exit -> ());
  { bug_found = !first_hit <> None; executions = !executions; first_hit = !first_hit }

(* Coverage-guided variant: keep inputs that discover new program
   counters, mutate one argument of a kept seed at a time. *)
let run_coverage_campaign ?(budget = 96) ~rng ~code ~selector tys =
  let dict = dictionary code in
  let seen_pcs = Hashtbl.create 256 in
  let corpus = ref [] in
  let executions = ref 0 and first_hit = ref None in
  let mutate args =
    match args with
    | [] -> args
    | _ ->
      let i = Random.State.int rng (List.length args) in
      List.mapi
        (fun j v ->
          if j <> i then v
          else
            let ty = List.nth tys j in
            if dict <> [] && Abi.Abity.is_basic ty && Random.State.bool rng
            then coerce_to ty (List.nth dict (Random.State.int rng (List.length dict)))
            else Abi.Valgen.value rng ty)
        args
  in
  (try
     for i = 1 to budget do
       incr executions;
       let args =
         match !corpus with
         | seed :: _ when Random.State.int rng 100 < 60 -> mutate seed
         | _ -> typed_input rng ~dict tys
       in
       let calldata = Abi.Encode.encode_call ~selector tys args in
       let res =
         Interp.execute ~gas_limit:500_000 ~record_trace:true ~code ~calldata ()
       in
       if res.Interp.outcome = Interp.Invalid_op then begin
         first_hit := Some i;
         raise Exit
       end;
       let fresh =
         List.exists (fun pc -> not (Hashtbl.mem seen_pcs pc)) res.Interp.trace_pcs
       in
       if fresh then begin
         List.iter (fun pc -> Hashtbl.replace seen_pcs pc ()) res.Interp.trace_pcs;
         corpus := args :: !corpus
       end
     done
   with Exit -> ());
  {
    bug_found = !first_hit <> None;
    executions = !executions;
    first_hit = !first_hit;
  }
