(** A register-based lifter in the style of Erays (§6.3): EVM stack
    code becomes three-address statements over virtual registers, one
    function body at a time. Erays+ (in {!Eraysplus}) post-processes
    this output with recovered signatures. *)

type stmt = {
  pc : int;
  text : string;          (** e.g. ["v3 = ADD(v1, 0x4)"] *)
  reads_calldata : bool;  (** the statement reads the call data *)
}

type lifted_fn = {
  selector_hex : string;
  entry_pc : int;
  stmts : stmt list;
}

val lift : string -> lifted_fn list
(** [lift bytecode] lifts every dispatched function. *)

val line_count : lifted_fn -> int
