open Evm

type outcome =
  | Recovered of Abi.Abity.t list
  | Not_recovered
  | Aborted

type t = {
  name : string;
  run : bytecode:string -> selector:string -> outcome;
}

let outcome_matches outcome params =
  match outcome with
  | Recovered tys ->
    List.length tys = List.length params
    && List.for_all2 Abi.Abity.equal tys params
  | Not_recovered | Aborted -> false

(* -- database lookup tools (OSD / EBD / JEB) ---------------------------- *)

let db_tool name ?(hit_failure_permille = 0) db =
  let run ~bytecode:_ ~selector =
    match Efsd.lookup db selector with
    | Some fsig ->
      if Hashtbl.hash (name ^ Hex.encode selector) mod 1000
         < hit_failure_permille
      then Not_recovered
      else Recovered fsig.Abi.Funsig.params
    | None -> Not_recovered
  in
  { name; run }

let osd db = db_tool "OSD" db
let ebd db = db_tool "EBD" ~hit_failure_permille:60 db
let jeb db = db_tool "JEB" ~hit_failure_permille:110 db

(* -- linear-scan heuristics --------------------------------------------- *)

(* The instruction window of the function body: from its dispatcher
   target to the first STOP (linear sweep, no control flow). *)
let body_window bytecode selector =
  let entries = Sigrec.Ids.extract bytecode in
  match
    List.find_opt (fun e -> e.Sigrec.Ids.selector = selector) entries
  with
  | None -> None
  | Some e ->
    let instrs = Disasm.disassemble bytecode in
    let after =
      List.filter (fun i -> i.Disasm.offset >= e.Sigrec.Ids.entry_pc) instrs
    in
    let rec take acc = function
      | [] -> List.rev acc
      | { Disasm.op = Opcode.STOP; _ } :: _ -> List.rev acc
      | i :: rest -> take (i :: acc) rest
    in
    Some (take [] after)

(* Scan a window for [PUSH slot; CALLDATALOAD] head reads and classify
   each by the mask instructions within the next few instructions — the
   kind of shallow pattern matching the paper ascribes to Eveem's
   fallback rules. *)
let scan_heads window =
  let arr = Array.of_list window in
  let n = Array.length arr in
  let heads = ref [] in
  for i = 0 to n - 2 do
    match (arr.(i).Disasm.op, arr.(i + 1).Disasm.op) with
    | Opcode.PUSH (_, slot), Opcode.CALLDATALOAD -> (
      match U256.to_int slot with
      | Some off when off >= 4 && (off - 4) mod 32 = 0 ->
        (* classify from a short lookahead window *)
        let ty = ref (Abi.Abity.Uint 256) in
        for j = i + 2 to Stdlib.min (i + 8) (n - 1) do
          match arr.(j).Disasm.op with
          | Opcode.PUSH (_, m)
            when j + 1 <= n - 1 && arr.(j + 1).Disasm.op = Opcode.AND -> (
            let rec width k =
              if k > 32 then None
              else if U256.equal m (U256.ones_low k) then Some (`Low k)
              else if U256.equal m (U256.ones_high k) then Some (`High k)
              else width (k + 1)
            in
            match width 1 with
            | Some (`Low 20) -> ty := Abi.Abity.Address
            | Some (`Low k) when k < 32 -> ty := Abi.Abity.Uint (8 * k)
            | Some (`High k) when k < 32 -> ty := Abi.Abity.Bytes_n k
            | _ -> ())
          | Opcode.PUSH (_, k)
            when j + 1 <= n - 1 && arr.(j + 1).Disasm.op = Opcode.SIGNEXTEND
            -> (
            match U256.to_int k with
            | Some k when k < 31 -> ty := Abi.Abity.Int (8 * (k + 1))
            | _ -> ())
          | Opcode.ISZERO
            when j + 1 <= n - 1 && arr.(j + 1).Disasm.op = Opcode.ISZERO ->
            ty := Abi.Abity.Bool
          | _ -> ()
        done;
        if not (List.mem_assoc off !heads) then
          heads := (off, !ty) :: !heads
      | _ -> ())
    | _ -> ()
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !heads

(* A [CALLDATALOAD; PUSH 4; ADD; DUP1; CALLDATALOAD] run marks an
   offset-field dereference (a dynamic parameter). *)
let count_offset_chains window =
  let rec go acc = function
    | { Disasm.op = Opcode.CALLDATALOAD; _ }
      :: { Disasm.op = Opcode.PUSH (_, four); _ }
      :: { Disasm.op = Opcode.ADD; _ }
      :: { Disasm.op = Opcode.DUP 1; _ }
      :: ({ Disasm.op = Opcode.CALLDATALOAD; _ } :: _ as rest)
      when U256.to_int four = Some 4 ->
      go (acc + 1) rest
    | _ :: rest -> go acc rest
    | [] -> acc
  in
  go 0 window

let eveem_heuristic ~bytecode ~selector =
  match body_window bytecode selector with
  | None -> Not_recovered
  | Some window ->
    let heads = scan_heads window in
    if heads = [] && count_offset_chains window = 0 then Not_recovered
    else
      (* Eveem's rules see only masked head loads: every dynamic or
         array parameter comes out as the word type of its head slot *)
      Recovered (List.map snd heads)

let gigahorse_heuristic ~bytecode ~selector =
  let h = Hashtbl.hash (Hex.encode selector ^ "gh") in
  if h mod 1000 < 34 then Aborted
  else
    match body_window bytecode selector with
    | None -> Not_recovered
    | Some window ->
      let heads = scan_heads window in
      let chains = count_offset_chains window in
      (* dynamic parameters are recognised as untyped uint256[] and
         attached to the head slots without mask evidence *)
      let dynamic_budget = ref chains in
      let tys =
        List.map
          (fun (_, ty) ->
            if ty = Abi.Abity.Uint 256 && !dynamic_budget > 0 then begin
              decr dynamic_budget;
              Abi.Abity.Darray (Abi.Abity.Uint 256)
            end
            else ty)
          heads
      in
      (* documented error modes: merge two consecutive parameters into
         one of a nonexistent width, or misreport a width *)
      let tys =
        match tys with
        | a :: b :: rest when h mod 100 < 11 ->
          let width ty =
            match ty with
            | Abi.Abity.Uint m -> m
            | Abi.Abity.Int m -> m
            | Abi.Abity.Address -> 160
            | _ -> 256
          in
          Abi.Abity.Uint (width a + width b) :: rest
        | a :: rest when h mod 100 >= 11 && h mod 100 < 17 ->
          ignore a;
          Abi.Abity.Uint 2304 :: rest
        | tys -> tys
      in
      if tys = [] then Not_recovered else Recovered tys

let eveem db =
  let run ~bytecode ~selector =
    match Efsd.lookup db selector with
    | Some fsig -> Recovered fsig.Abi.Funsig.params
    | None -> eveem_heuristic ~bytecode ~selector
  in
  { name = "Eveem"; run }

let gigahorse db =
  let run ~bytecode ~selector =
    let h = Hashtbl.hash (Hex.encode selector ^ "gh") in
    if h mod 1000 < 34 then Aborted
    else
      match Efsd.lookup db selector with
      | Some fsig when h mod 100 >= 5 -> Recovered fsig.Abi.Funsig.params
      | _ -> gigahorse_heuristic ~bytecode ~selector
  in
  { name = "Gigahorse"; run }
