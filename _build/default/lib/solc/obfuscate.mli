(** Semantics-preserving bytecode obfuscation (the threat the paper's
    §7 discusses: "replacing the instruction sequence for accessing
    parameters ... with a different instruction sequence with the same
    semantics").

    Three escalating levels:

    - level 1 — {e syntactic} noise: junk instruction pairs
      (PUSH/POP, PC/POP) and opaque always-taken branches are
      interleaved with the real code. Defeats window-based pattern
      matchers (Eveem's rules); TASE is unaffected because its rules
      are over the executed semantics, not the instruction text.
    - level 2 — {e constant splitting}: every PUSH of a constant becomes
      two pushes and an ADD. Defeats matchers that key on immediate
      values (head-slot PUSH before CALLDATALOAD); TASE folds the
      addition back during symbolic execution.
    - level 3 — {e semantic mask rewriting}: AND masks become their De
      Morgan dual (NOT/OR/NOT). This changes the semantics-bearing
      instruction itself, so even TASE's fine-grained refinements
      degrade — the gradient the obfuscation benchmark measures, and
      the motivation for the paper's future-work "general rules". *)

val apply :
  ?level:int -> seed:int -> Evm.Asm.item list -> Evm.Asm.item list
(** [apply ~level ~seed items] — level defaults to 1; levels are
    cumulative (3 includes 2 and 1). *)

val compile_obfuscated :
  ?level:int -> seed:int -> Compile.contract -> string
(** Convenience: {!Compile.compile_items} + {!apply} + assembly. *)
