open Evm

(* All transformations run before assembly, so labels survive and jump
   targets relocate for free — the same place a real obfuscating
   toolchain sits. *)

let junk_variants rng fresh =
  match Random.State.int rng 3 with
  | 0 -> [ Asm.Op (Opcode.push (Random.State.int rng 256)); Asm.Op Opcode.POP ]
  | 1 -> [ Asm.Op Opcode.PC; Asm.Op Opcode.POP ]
  | _ ->
    (* opaque always-taken branch over a trap *)
    let skip = fresh () in
    [
      Asm.Op (Opcode.push 1);
      Asm.Push_label skip;
      Asm.Op Opcode.JUMPI;
      Asm.Op Opcode.INVALID;
      Asm.Label skip;
    ]

(* level 2: PUSH c  ==>  PUSH (c-k); PUSH k; ADD *)
let split_push rng op =
  match op with
  | Opcode.PUSH (n, v) when n >= 1 && n <= 30 && U256.compare v (U256.of_int 2) > 0
    -> (
    match U256.to_int v with
    | Some c when c > 2 ->
      let k = 1 + Random.State.int rng (Stdlib.min (c - 1) 255) in
      Some
        [ Asm.Op (Opcode.push (c - k)); Asm.Op (Opcode.push k);
          Asm.Op Opcode.ADD ]
    | _ -> None)
  | _ -> None

(* level 3: AND  ==>  NOT; SWAP1; NOT; OR; NOT  (De Morgan) *)
let demorgan_and =
  Asm.
    [
      Op Opcode.NOT; Op (Opcode.SWAP 1); Op Opcode.NOT; Op Opcode.OR;
      Op Opcode.NOT;
    ]

let apply ?(level = 1) ~seed items =
  let rng = Random.State.make [| seed; 0x0bf5 |] in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "obf_%d_%d" seed !counter
  in
  List.concat_map
    (fun item ->
      let junk =
        (* sprinkle junk before roughly a third of the instructions;
           never before a label (the JUMPDEST must stay first at its
           target) *)
        match item with
        | Asm.Label _ -> []
        | _ when Random.State.int rng 100 < 35 -> junk_variants rng fresh
        | _ -> []
      in
      let rewritten =
        match item with
        | Asm.Op (Opcode.PUSH _ as op) when level >= 2 -> (
          (* keep 4-byte dispatch comparisons intact: splitting the
             selector constant would break nothing semantically but
             also hides the ids from every tool including the
             ground-truth extraction this study relies on *)
          match op with
          | Opcode.PUSH (4, _) -> [ item ]
          | _ -> (
            match split_push rng op with
            | Some ops when Random.State.int rng 100 < 60 -> ops
            | _ -> [ item ]))
        | Asm.Op Opcode.AND when level >= 3 ->
          if Random.State.int rng 100 < 70 then demorgan_and else [ item ]
        | _ -> [ item ]
      in
      junk @ rewritten)
    items

let compile_obfuscated ?level ~seed contract =
  Asm.assemble (apply ?level ~seed (Compile.compile_items contract))
