lib/solc/corpus.ml: Abi Compile Evm Hashtbl Lang List Option Printf Random String Version
