lib/solc/obfuscate.mli: Compile Evm
