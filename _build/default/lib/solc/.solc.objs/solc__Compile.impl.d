lib/solc/compile.ml: Abi Access Asm Emit Evm Lang List Opcode Printf U256 Version Vyper
