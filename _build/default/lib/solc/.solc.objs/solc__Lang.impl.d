lib/solc/lang.ml: Abi Evm List
