lib/solc/version.mli: Abi
