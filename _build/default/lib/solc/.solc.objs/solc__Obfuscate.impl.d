lib/solc/obfuscate.ml: Asm Compile Evm List Opcode Printf Random Stdlib U256
