lib/solc/corpus.mli: Abi Lang Random Version
