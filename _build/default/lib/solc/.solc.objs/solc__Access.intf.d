lib/solc/access.mli: Abi Emit Lang
