lib/solc/lang.mli: Abi Evm
