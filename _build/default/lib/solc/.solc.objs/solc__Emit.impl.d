lib/solc/emit.ml: Evm List Printf
