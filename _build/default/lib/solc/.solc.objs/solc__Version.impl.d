lib/solc/version.ml: Abi List
