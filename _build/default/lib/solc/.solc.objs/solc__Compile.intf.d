lib/solc/compile.mli: Abi Evm Lang Version
