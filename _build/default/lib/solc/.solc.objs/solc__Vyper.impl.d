lib/solc/vyper.ml: Abi Emit Evm Lang List Opcode U256 Version
