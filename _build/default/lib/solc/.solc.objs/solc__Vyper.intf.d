lib/solc/vyper.mli: Emit Evm Lang Version
