lib/solc/access.ml: Abi Emit Evm Lang List Opcode U256
