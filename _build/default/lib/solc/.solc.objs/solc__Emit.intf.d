lib/solc/emit.mli: Evm
