type usage = {
  math : bool;
  signed_math : bool;
  byte_access : bool;
  item_access : bool;
}

let default_usage =
  { math = true; signed_math = false; byte_access = true; item_access = true }

let plain_usage =
  { math = false; signed_math = false; byte_access = false; item_access = false }

type quirk =
  | No_quirk
  | Converted of Abi.Abity.t
  | Storage_ref
  | Const_index_optimized

type param_spec = { ty : Abi.Abity.t; usage : usage; quirk : quirk }

let param ?(usage = default_usage) ?(quirk = No_quirk) ty =
  { ty; usage; quirk }

type bug = Deep of Evm.U256.t | Shallow of { shift : int; nibble : int }

type fn_spec = {
  fsig : Abi.Funsig.t;
  param_specs : param_spec list;
  asm_reads : int;
  returns_word : bool;
  bug : bug option;
}

let fn ?(asm_reads = 0) ?(returns_word = false) ?bug fsig param_specs =
  if List.length fsig.Abi.Funsig.params <> List.length param_specs then
    invalid_arg "Lang.fn: spec list does not align with signature";
  List.iter2
    (fun ty spec ->
      if not (Abi.Abity.equal ty spec.ty) then
        invalid_arg "Lang.fn: spec type differs from signature type")
    fsig.Abi.Funsig.params param_specs;
  { fsig; param_specs; asm_reads; returns_word; bug }

let fn_of_sig ?(usage = default_usage) ?(returns_word = false) fsig =
  {
    fsig;
    param_specs = List.map (fun ty -> param ~usage ty) fsig.Abi.Funsig.params;
    asm_reads = 0;
    returns_word;
    bug = None;
  }

let declared_arity t = List.length t.fsig.Abi.Funsig.params
