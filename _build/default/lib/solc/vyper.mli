(** Vyper accessing-pattern code generation (paper §2.3.2): comparison
    instructions enforcing value ranges instead of Solidity's masks;
    identical bytecode for public and external functions. *)

val emit_param :
  Emit.t ->
  version:Version.t ->
  revert_label:string ->
  head:int ->
  Lang.param_spec ->
  unit

val bound_address : Evm.U256.t
(** 2^160 *)

val bound_bool : Evm.U256.t
(** 2 *)

val bound_int128_max : Evm.U256.t
val bound_int128_min : Evm.U256.t
val bound_decimal_max : Evm.U256.t
val bound_decimal_min : Evm.U256.t
