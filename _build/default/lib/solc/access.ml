open Evm

let head_offsets params =
  let rec go off = function
    | [] -> []
    | ty :: rest -> off :: go (off + Abi.Abity.head_size ty) rest
  in
  go 4 params

(* -- masks and body usage ---------------------------------------------- *)

(* Stack: [value] -> [masked]. The mask idioms are exactly the ones the
   rules key on: AND low-ones for uintM (R11), SIGNEXTEND for intM (R13),
   double ISZERO for bool (R14), AND high-ones for bytesM (R12), the
   20-byte AND for address/uint160 (R16). Full-width types get no mask. *)
let emit_mask e ty =
  match ty with
  | Abi.Abity.Uint 256 | Abi.Abity.Int 256 | Abi.Abity.Bytes_n 32 -> ()
  | Abi.Abity.Uint m ->
    Emit.push_u256 e (U256.ones_low (m / 8));
    Emit.op e Opcode.AND
  | Abi.Abity.Int m ->
    Emit.push_int e ((m / 8) - 1);
    Emit.op e Opcode.SIGNEXTEND
  | Abi.Abity.Address ->
    Emit.push_u256 e (U256.ones_low 20);
    Emit.op e Opcode.AND
  | Abi.Abity.Bool ->
    Emit.op e Opcode.ISZERO;
    Emit.op e Opcode.ISZERO
  | Abi.Abity.Bytes_n m ->
    Emit.push_u256 e (U256.ones_high m);
    Emit.op e Opcode.AND
  | _ -> ()

(* Stack: [value] -> []. *)
let emit_usage_value e (usage : Lang.usage) ty =
  emit_mask e ty;
  let is_integer =
    match ty with
    | Abi.Abity.Uint _ | Abi.Abity.Int _ | Abi.Abity.Address -> true
    | _ -> false
  in
  if usage.math && is_integer then begin
    (* arithmetic on the value: distinguishes uint160 from address *)
    match ty with
    | Abi.Abity.Address -> () (* an address is never used in math (R16) *)
    | _ ->
      Emit.op e (Opcode.DUP 1);
      Emit.push_int e 1;
      Emit.op e Opcode.ADD;
      Emit.op e Opcode.POP
  end;
  (match ty with
  | Abi.Abity.Int 256 when usage.signed_math || usage.math ->
    (* signed-only instruction: distinguishes int256 from uint256 (R15) *)
    Emit.op e (Opcode.DUP 1);
    Emit.push_int e 2;
    Emit.op e (Opcode.SWAP 1);
    Emit.op e Opcode.SDIV;
    Emit.op e Opcode.POP
  | Abi.Abity.Bytes_n 32 when usage.byte_access ->
    (* BYTE on the raw word: distinguishes bytes32 from uint256 (R18) *)
    Emit.op e (Opcode.DUP 1);
    Emit.push_int e 0;
    Emit.op e Opcode.BYTE;
    Emit.op e Opcode.POP
  | _ -> ());
  Emit.op e Opcode.POP

(* -- small stack/memory helpers ---------------------------------------- *)

let load_scratch e s =
  Emit.push_int e s;
  Emit.op e Opcode.MLOAD

let store_scratch e s =
  (* value on top *)
  Emit.push_int e s;
  Emit.op e Opcode.MSTORE

(* Emit a counted loop: mem[counter] from 0 while mem[counter] < bound.
   [bound_on_stack] pushes the bound. *)
let emit_loop e ~counter ~push_bound body =
  let lstart = Emit.fresh_label e "loop" in
  let lend = Emit.fresh_label e "endloop" in
  Emit.push_int e 0;
  store_scratch e counter;
  Emit.label e lstart;
  push_bound ();
  load_scratch e counter;
  Emit.op e Opcode.LT;
  (* i < bound on top: LT pops i (top) and bound *)
  Emit.op e Opcode.ISZERO;
  Emit.jumpi_to e lend;
  body ();
  load_scratch e counter;
  Emit.push_int e 1;
  Emit.op e Opcode.ADD;
  store_scratch e counter;
  Emit.jump_to e lstart;
  Emit.label e lend

(* Push base + sum(mem[counter_i] * stride_i). Base is pushed by
   [push_base]. *)
let push_indexed e ~push_base levels =
  push_base ();
  List.iter
    (fun (counter, stride) ->
      load_scratch e counter;
      Emit.push_int e stride;
      Emit.op e Opcode.MUL;
      Emit.op e Opcode.ADD)
    levels

(* Decompose an array type into (outer-to-inner static dimension sizes,
   element type). [Sarray (Sarray (u8, 3), 2)] is uint8[3][2]: two rows
   of three items; yields ([2; 3], u8). *)
let rec static_dims = function
  | Abi.Abity.Sarray (t, n) ->
    let dims, elem = static_dims t in
    (n :: dims, elem)
  | t -> ([], t)

(* -- public-mode copies ------------------------------------------------ *)

(* Copy a static array: nested loops over the outer dims, one
   CALLDATACOPY of the innermost row per iteration (Listing 1). *)
let emit_copy_static e ~src_base ~dims ~elem_usage ~usage =
  match dims with
  | [] -> ()
  | _ ->
    let inner = List.nth dims (List.length dims - 1) in
    let outer = List.filteri (fun i _ -> i < List.length dims - 1) dims in
    let row = inner * 32 in
    let total = List.fold_left ( * ) row outer in
    let dst = Emit.alloc e total in
    (* strides for outer levels: product of the sizes of deeper levels *)
    let levels =
      List.mapi
        (fun i n ->
          let deeper =
            List.filteri (fun j _ -> j > i) outer |> List.fold_left ( * ) 1
          in
          (n, Emit.scratch e, deeper * row))
        outer
      (* (bound, counter slot, stride) outermost first *)
    in
    let rec nest = function
      | [] ->
        (* innermost: CALLDATACOPY(dst + flat, src + flat, row) *)
        let flat = List.map (fun (_, c, s) -> (c, s)) levels in
        Emit.push_int e row;
        push_indexed e ~push_base:(fun () -> Emit.push_int e src_base) flat;
        push_indexed e ~push_base:(fun () -> Emit.push_int e dst) flat;
        Emit.op e Opcode.CALLDATACOPY
      | (bound, counter, _) :: rest ->
        emit_loop e ~counter
          ~push_bound:(fun () -> Emit.push_int e bound)
          (fun () -> nest rest)
    in
    nest levels;
    (* body usage: read the first item from memory and use it *)
    if usage.Lang.item_access then begin
      Emit.push_int e dst;
      Emit.op e Opcode.MLOAD;
      elem_usage ()
    end

(* Copy a dynamic array / bytes / string of a public function. The two
   R1 CALLDATALOADs (offset field, then num field) come first; then the
   item data is copied: a single CALLDATACOPY for the one-dimensional
   case (length num*32 for arrays, ceil32(num) for bytes/string), loops
   otherwise. *)
let emit_copy_dynamic e ~head ~kind ~usage ~elem_usage =
  let s_abs = Emit.scratch e and s_num = Emit.scratch e in
  Emit.push_int e head;
  Emit.op e Opcode.CALLDATALOAD;
  Emit.push_int e 4;
  Emit.op e Opcode.ADD;
  (* abs location of the num field *)
  Emit.op e (Opcode.DUP 1);
  Emit.op e Opcode.CALLDATALOAD;
  (* stack: [num, abs] *)
  store_scratch e s_num;
  store_scratch e s_abs;
  let dst = Emit.alloc e 0x800 in
  (* store num at the array's memory header, as solc does *)
  load_scratch e s_num;
  Emit.push_int e dst;
  Emit.op e Opcode.MSTORE;
  (match kind with
  | `Array_1d ->
    (* length = num * 32 (R7) *)
    load_scratch e s_num;
    Emit.push_int e 32;
    Emit.op e Opcode.MUL;
    load_scratch e s_abs;
    Emit.push_int e 32;
    Emit.op e Opcode.ADD;
    Emit.push_int e (dst + 32);
    Emit.op e Opcode.CALLDATACOPY
  | `Bytes_like ->
    (* length = ceil32(num) = (num + 31) / 32 * 32 (R8) *)
    load_scratch e s_num;
    Emit.push_int e 31;
    Emit.op e Opcode.ADD;
    Emit.push_int e 32;
    Emit.op e (Opcode.SWAP 1);
    Emit.op e Opcode.DIV;
    Emit.push_int e 32;
    Emit.op e Opcode.MUL;
    load_scratch e s_abs;
    Emit.push_int e 32;
    Emit.op e Opcode.ADD;
    Emit.push_int e (dst + 32);
    Emit.op e Opcode.CALLDATACOPY
  | `Array_nd dims ->
    (* top dimension dynamic: loop i < num; lower static dims: nested
       constant loops; innermost row copied per iteration (R10) *)
    let inner = List.nth dims (List.length dims - 1) in
    let outer = List.filteri (fun i _ -> i < List.length dims - 1) dims in
    let row = inner * 32 in
    let top_counter = Emit.scratch e in
    let top_stride = List.fold_left ( * ) row outer in
    let levels =
      (`Dyn, top_counter, top_stride)
      :: List.mapi
           (fun i n ->
             let deeper =
               List.filteri (fun j _ -> j > i) outer |> List.fold_left ( * ) 1
             in
             (`Const n, Emit.scratch e, deeper * row))
           outer
    in
    let rec nest = function
      | [] ->
        let flat = List.map (fun (_, c, s) -> (c, s)) levels in
        Emit.push_int e row;
        push_indexed e
          ~push_base:(fun () ->
            load_scratch e s_abs;
            Emit.push_int e 32;
            Emit.op e Opcode.ADD)
          flat;
        push_indexed e ~push_base:(fun () -> Emit.push_int e (dst + 32)) flat;
        Emit.op e Opcode.CALLDATACOPY
      | (bound, counter, _) :: rest ->
        emit_loop e ~counter
          ~push_bound:(fun () ->
            match bound with
            | `Dyn -> load_scratch e s_num
            | `Const n -> Emit.push_int e n)
          (fun () -> nest rest)
    in
    nest levels);
  (* body usage: first item / first word *)
  (match kind with
  | `Array_1d | `Array_nd _ ->
    if usage.Lang.item_access then begin
      Emit.push_int e (dst + 32);
      Emit.op e Opcode.MLOAD;
      elem_usage ()
    end
  | `Bytes_like ->
    if usage.Lang.byte_access then begin
      Emit.push_int e (dst + 32);
      Emit.op e Opcode.MLOAD;
      Emit.push_int e 0;
      Emit.op e Opcode.BYTE;
      Emit.op e Opcode.POP
    end)

(* -- external-mode on-demand loads ------------------------------------- *)

(* Bound check: index < bound, revert otherwise (the check solc emits
   before every external array access). [push_idx]/[push_bound] push the
   operands. *)
let emit_bound_check e ~revert_label ~push_bound ~push_idx =
  push_bound ();
  push_idx ();
  Emit.op e Opcode.LT;
  Emit.op e Opcode.ISZERO;
  Emit.jumpi_to e revert_label

(* The symbolic runtime index used for on-demand accesses: CALLVALUE is
   a free environment value, so the bound checks stay symbolic for the
   analyser exactly like an index coming from another input would. *)
(* Each parameter instance indexes with a distinct symbolic expression
   (callvalue + k), the way real contract code indexes different arrays
   with different variables; the analyser links a bound check to an item
   load by the index term they share. *)
let push_idx e k =
  Emit.op e Opcode.CALLVALUE;
  Emit.push_int e k;
  Emit.op e Opcode.ADD

let emit_ext_static e ~revert_label ~head ~optimize ~spec =
  let k = Emit.fresh_idx e in
  let dims, elem = static_dims spec.Lang.ty in
  let const_index =
    spec.Lang.quirk = Lang.Const_index_optimized && optimize
  in
  if not spec.Lang.usage.Lang.item_access then ()
  else if const_index then begin
    (* compile-time bound check, no runtime check: the item load is
       indistinguishable from a uint256 basic parameter (case 5) *)
    Emit.push_int e head;
    Emit.op e Opcode.CALLDATALOAD;
    emit_usage_value e spec.Lang.usage elem
  end
  else begin
    (* one runtime bound check per dimension, outermost first (R3) *)
    List.iter
      (fun n ->
        emit_bound_check e ~revert_label
          ~push_bound:(fun () -> Emit.push_int e n)
          ~push_idx:(fun () -> push_idx e k))
      dims;
    (* flat = ((i*D2 + i)*D3 + i)... , loc = head + flat*32 *)
    Emit.push_int e 0;
    List.iteri
      (fun d n ->
        if d > 0 then begin
          Emit.push_int e n;
          Emit.op e Opcode.MUL
        end;
        push_idx e k;
        Emit.op e Opcode.ADD)
      dims;
    Emit.push_int e 32;
    Emit.op e Opcode.MUL;
    Emit.push_int e head;
    Emit.op e Opcode.ADD;
    Emit.op e Opcode.CALLDATALOAD;
    emit_usage_value e spec.Lang.usage elem
  end

let emit_ext_dynamic e ~revert_label ~head ~spec =
  let k = Emit.fresh_idx e in
  let s_abs = Emit.scratch e and s_num = Emit.scratch e in
  Emit.push_int e head;
  Emit.op e Opcode.CALLDATALOAD;
  Emit.push_int e 4;
  Emit.op e Opcode.ADD;
  Emit.op e (Opcode.DUP 1);
  Emit.op e Opcode.CALLDATALOAD;
  store_scratch e s_num;
  store_scratch e s_abs;
  match spec.Lang.ty with
  | Abi.Abity.Darray elem_ty ->
    let dims, elem = static_dims elem_ty in
    if spec.Lang.usage.Lang.item_access then begin
      (* dynamic top bound first, then the static lower bounds (R2) *)
      emit_bound_check e ~revert_label
        ~push_bound:(fun () -> load_scratch e s_num)
        ~push_idx:(fun () -> push_idx e k);
      List.iter
        (fun n ->
          emit_bound_check e ~revert_label
            ~push_bound:(fun () -> Emit.push_int e n)
            ~push_idx:(fun () -> push_idx e k))
        dims;
      (* loc = abs + 32 + flat*32 with flat = ((i*D1 + i)*D2 + i)...;
         the index list is the dynamic top index followed by one index
         per static lower dimension, so the multiplier at step k is the
         size of lower dimension k *)
      Emit.push_int e 0;
      List.iteri
        (fun d n ->
          if d > 0 then begin
            Emit.push_int e n;
            Emit.op e Opcode.MUL
          end;
          push_idx e k;
          Emit.op e Opcode.ADD)
        (0 :: dims);
      Emit.push_int e 32;
      Emit.op e Opcode.MUL;
      load_scratch e s_abs;
      Emit.push_int e 32;
      Emit.op e Opcode.ADD;
      Emit.op e Opcode.ADD;
      Emit.op e Opcode.CALLDATALOAD;
      emit_usage_value e spec.Lang.usage elem
    end
  | Abi.Abity.Bytes | Abi.Abity.String_t ->
    if spec.Lang.usage.Lang.byte_access && spec.Lang.ty = Abi.Abity.Bytes
    then begin
      (* reading one byte: no multiplication by 32 (§2.3.1) *)
      emit_bound_check e ~revert_label
        ~push_bound:(fun () -> load_scratch e s_num)
        ~push_idx:(fun () -> push_idx e k);
      load_scratch e s_abs;
      Emit.push_int e 32;
      Emit.op e Opcode.ADD;
      push_idx e k;
      Emit.op e Opcode.ADD;
      Emit.op e Opcode.CALLDATALOAD;
      Emit.push_int e 0;
      Emit.op e Opcode.BYTE;
      Emit.op e Opcode.POP
    end
  | _ -> invalid_arg "Access.emit_ext_dynamic: not a dynamic type"

(* -- nested arrays and dynamic structs (same code for both modes) ------ *)

(* Walk a dynamic aggregate: the absolute start of the current block is
   in scratch slot [s_base]. Offsets inside a block are relative to the
   block start per the ABI spec. *)
let rec emit_nested e ~revert_label ~usage ~k ~s_base ty =
  ignore k;
  let k = Emit.fresh_idx e in
  match ty with
  | Abi.Abity.Darray elem ->
    (* block = num word followed by the item sequence *)
    let s_num = Emit.scratch e in
    load_scratch e s_base;
    Emit.op e Opcode.CALLDATALOAD;
    store_scratch e s_num;
    if usage.Lang.item_access then begin
      emit_bound_check e ~revert_label
        ~push_bound:(fun () -> load_scratch e s_num)
        ~push_idx:(fun () -> push_idx e k);
      if Abi.Abity.is_dynamic elem then begin
        (* the item head is an offset relative to the sequence start *)
        let s_child = Emit.scratch e in
        load_scratch e s_base;
        Emit.push_int e 32;
        Emit.op e Opcode.ADD;
        Emit.op e (Opcode.DUP 1);
        push_idx e k;
        Emit.push_int e 32;
        Emit.op e Opcode.MUL;
        Emit.op e Opcode.ADD;
        Emit.op e Opcode.CALLDATALOAD;
        (* stack: [rel_off, seq_start] *)
        Emit.op e Opcode.ADD;
        store_scratch e s_child;
        emit_nested e ~revert_label ~usage ~k ~s_base:s_child elem
      end
      else begin
        load_scratch e s_base;
        Emit.push_int e 32;
        Emit.op e Opcode.ADD;
        push_idx e k;
        Emit.push_int e 32;
        Emit.op e Opcode.MUL;
        Emit.op e Opcode.ADD;
        Emit.op e Opcode.CALLDATALOAD;
        emit_usage_value e usage (Abi.Abity.base_elem elem)
      end
    end
  | Abi.Abity.Sarray (elem, n) when Abi.Abity.is_dynamic elem ->
    (* static dimension over dynamic items: heads are offsets *)
    if usage.Lang.item_access then begin
      emit_bound_check e ~revert_label
        ~push_bound:(fun () -> Emit.push_int e n)
        ~push_idx:(fun () -> push_idx e k);
      let s_child = Emit.scratch e in
      load_scratch e s_base;
      Emit.op e (Opcode.DUP 1);
      push_idx e k;
      Emit.push_int e 32;
      Emit.op e Opcode.MUL;
      Emit.op e Opcode.ADD;
      Emit.op e Opcode.CALLDATALOAD;
      Emit.op e Opcode.ADD;
      store_scratch e s_child;
      emit_nested e ~revert_label ~usage ~k ~s_base:s_child elem
    end
  | Abi.Abity.Tuple fields ->
    (* dynamic struct: fields at their head offsets inside the block *)
    let rec walk off = function
      | [] -> ()
      | f :: rest ->
        if Abi.Abity.is_dynamic f then begin
          let s_child = Emit.scratch e in
          load_scratch e s_base;
          Emit.op e (Opcode.DUP 1);
          Emit.push_int e off;
          Emit.op e Opcode.ADD;
          Emit.op e Opcode.CALLDATALOAD;
          Emit.op e Opcode.ADD;
          store_scratch e s_child;
          emit_nested e ~revert_label ~usage ~k ~s_base:s_child f
        end
        else begin
          load_scratch e s_base;
          Emit.push_int e off;
          Emit.op e Opcode.ADD;
          Emit.op e Opcode.CALLDATALOAD;
          emit_usage_value e usage f
        end;
        walk (off + Abi.Abity.head_size f) rest
    in
    walk 0 fields
  | Abi.Abity.Bytes | Abi.Abity.String_t ->
    let s_num = Emit.scratch e in
    load_scratch e s_base;
    Emit.op e Opcode.CALLDATALOAD;
    store_scratch e s_num;
    if usage.Lang.byte_access && ty = Abi.Abity.Bytes then begin
      emit_bound_check e ~revert_label
        ~push_bound:(fun () -> load_scratch e s_num)
        ~push_idx:(fun () -> push_idx e k);
      load_scratch e s_base;
      Emit.push_int e 32;
      Emit.op e Opcode.ADD;
      push_idx e k;
      Emit.op e Opcode.ADD;
      Emit.op e Opcode.CALLDATALOAD;
      Emit.push_int e 0;
      Emit.op e Opcode.BYTE;
      Emit.op e Opcode.POP
    end
  | basic ->
    load_scratch e s_base;
    Emit.op e Opcode.CALLDATALOAD;
    emit_usage_value e usage basic

(* Entry for a dynamic aggregate parameter: read the offset field at the
   head slot, compute the absolute block start (offset + 4). *)
let emit_nested_param e ~revert_label ~usage ~head ty =
  let k = Emit.fresh_idx e in
  let s_base = Emit.scratch e in
  Emit.push_int e head;
  Emit.op e Opcode.CALLDATALOAD;
  Emit.push_int e 4;
  Emit.op e Opcode.ADD;
  store_scratch e s_base;
  emit_nested e ~revert_label ~usage ~k ~s_base ty

(* -- quirks ------------------------------------------------------------ *)

let emit_inline_assembly_reads e ~base n =
  for i = 0 to n - 1 do
    Emit.push_int e (base + (32 * i));
    Emit.op e Opcode.CALLDATALOAD;
    Emit.op e Opcode.POP
  done

let emit_storage_ref e ~head =
  (* the call data carries a storage slot reference; the body reads the
     slot — SigRec sees a bare uint256 (case 4) *)
  Emit.push_int e head;
  Emit.op e Opcode.CALLDATALOAD;
  Emit.op e Opcode.SLOAD;
  Emit.op e Opcode.POP

(* -- dispatch over parameter shapes ------------------------------------ *)

let emit_param e ~optimize ~visibility ~revert_label ~head spec =
  let usage = spec.Lang.usage in
  match spec.Lang.quirk with
  | Lang.Storage_ref -> emit_storage_ref e ~head
  | _ -> (
    let effective_ty =
      match spec.Lang.quirk with
      | Lang.Converted ty -> ty
      | _ -> spec.Lang.ty
    in
    match effective_ty with
    | Abi.Abity.Uint _ | Abi.Abity.Int _ | Abi.Abity.Address | Abi.Abity.Bool
    | Abi.Abity.Bytes_n _ ->
      Emit.push_int e head;
      Emit.op e Opcode.CALLDATALOAD;
      emit_usage_value e usage effective_ty
    | Abi.Abity.Sarray _ when not (Abi.Abity.is_nested_array effective_ty)
      -> (
      let dims, elem = static_dims effective_ty in
      match visibility with
      | Abi.Funsig.Public ->
        let spec_usage = usage in
        emit_copy_static e ~src_base:head ~dims
          ~elem_usage:(fun () -> emit_usage_value e spec_usage elem)
          ~usage
      | Abi.Funsig.External ->
        emit_ext_static e ~revert_label ~head ~optimize
          ~spec:{ spec with Lang.ty = effective_ty })
    | Abi.Abity.Darray elem_ty
      when not (Abi.Abity.is_dynamic elem_ty) -> (
      match visibility with
      | Abi.Funsig.Public ->
        let dims, elem = static_dims elem_ty in
        let kind = match dims with [] -> `Array_1d | _ -> `Array_nd dims in
        emit_copy_dynamic e ~head ~kind ~usage ~elem_usage:(fun () ->
            emit_usage_value e usage elem)
      | Abi.Funsig.External ->
        emit_ext_dynamic e ~revert_label ~head
          ~spec:{ spec with Lang.ty = effective_ty })
    | Abi.Abity.Bytes | Abi.Abity.String_t -> (
      match visibility with
      | Abi.Funsig.Public ->
        emit_copy_dynamic e ~head ~kind:`Bytes_like
          ~usage:
            { usage with Lang.byte_access =
                usage.Lang.byte_access && effective_ty = Abi.Abity.Bytes }
          ~elem_usage:(fun () -> ())
      | Abi.Funsig.External ->
        emit_ext_dynamic e ~revert_label ~head
          ~spec:{ spec with Lang.ty = effective_ty })
    | Abi.Abity.Darray _ | Abi.Abity.Sarray _ ->
      (* nested array: same accessing pattern in both modes (§2.3.1) *)
      emit_nested_param e ~revert_label ~usage ~head effective_ty
    | Abi.Abity.Tuple _ when Abi.Abity.is_dynamic effective_ty ->
      emit_nested_param e ~revert_label ~usage ~head effective_ty
    | Abi.Abity.Tuple _ ->
      (* static struct: handled by flattening in Compile; if reached,
         emit the flattened fields in place *)
      invalid_arg "Access.emit_param: static struct must be flattened"
    | Abi.Abity.Decimal | Abi.Abity.Vbytes _ | Abi.Abity.Vstring _ ->
      invalid_arg "Access.emit_param: Vyper type in Solidity codegen")
