(** Synthetic compiler versions. Each version is a bundle of code
    generation choices that real solc/vyper releases vary: dispatcher
    style (DIV on pre-0.4.22 Solidity, SHR after), a non-payable
    callvalue guard, PUSH0 availability, and the optimisation flag. The
    paper evaluates 155 Solidity and 17 Vyper versions; we model the
    distinct pattern-relevant combinations. *)

type t = {
  name : string;
  lang : Abi.Abity.lang;
  shr_dispatch : bool;
  callvalue_guard : bool;
  memory_staged_bounds : bool;
      (** Vyper: stage range-check bounds through memory (Listing 5)
          rather than comparing against an immediate *)
  abiv2 : bool;  (** struct / nested array parameters allowed *)
  optimize : bool;
}

val solidity_versions : t list
(** 18 synthetic Solidity versions (9 releases x with/without
    optimisation), oldest first. *)

val vyper_versions : t list
(** 8 synthetic Vyper versions. *)

val latest_solidity : t
val latest_vyper : t
val by_name : string -> t option
