type t = {
  name : string;
  lang : Abi.Abity.lang;
  shr_dispatch : bool;
  callvalue_guard : bool;
  memory_staged_bounds : bool;
  abiv2 : bool;
  optimize : bool;
}

let sol name ~shr ~guard ~abiv2 ~optimize =
  {
    name = (if optimize then name ^ "+opt" else name);
    lang = Abi.Abity.Solidity;
    shr_dispatch = shr;
    callvalue_guard = guard;
    memory_staged_bounds = false;
    abiv2;
    optimize;
  }

let solidity_releases =
  [
    ("0.1.7", false, false, false);
    ("0.2.2", false, false, false);
    ("0.3.6", false, false, false);
    ("0.4.11", false, true, false);
    ("0.4.19", false, true, true);
    ("0.4.24", false, true, true);
    ("0.5.5", true, true, true);
    ("0.6.12", true, true, true);
    ("0.8.0", true, true, true);
  ]

let solidity_versions =
  List.concat_map
    (fun (name, shr, guard, abiv2) ->
      [
        sol name ~shr ~guard ~abiv2 ~optimize:false;
        sol name ~shr ~guard ~abiv2 ~optimize:true;
      ])
    solidity_releases

let vy name ~staged ~shr ~optimize =
  {
    name = (if optimize then name ^ "+opt" else name);
    lang = Abi.Abity.Vyper;
    shr_dispatch = shr;
    callvalue_guard = false;
    memory_staged_bounds = staged;
    abiv2 = false;
    optimize;
  }

let vyper_releases =
  [
    ("v0.1.0b4", true, false);
    ("v0.1.0b17", true, false);
    ("v0.2.4", true, true);
    ("v0.2.8", false, true);
  ]

let vyper_versions =
  List.concat_map
    (fun (name, staged, shr) ->
      [ vy name ~staged ~shr ~optimize:false; vy name ~staged ~shr ~optimize:true ])
    vyper_releases

let latest_solidity = List.nth solidity_versions (List.length solidity_versions - 1)
let latest_vyper = List.nth vyper_versions (List.length vyper_versions - 1)

let by_name name =
  List.find_opt
    (fun v -> v.name = name)
    (solidity_versions @ vyper_versions)
