open Evm

let bound_address = U256.pow2 160
let bound_bool = U256.of_int 2
let bound_int128_max = U256.sub (U256.pow2 127) U256.one
let bound_int128_min = U256.neg (U256.pow2 127)

(* decimal is a base-10^10 fixed-point value in [-2^127, 2^127) *)
let decimal_scale = U256.of_string "10000000000"
let bound_decimal_max =
  U256.sub (U256.mul (U256.pow2 127) decimal_scale) U256.one
let bound_decimal_min = U256.neg (U256.mul (U256.pow2 127) decimal_scale)

(* Value on the stack; emit a range check against [bound]. With
   [staged] the bound is staged through scratch memory first, as older
   Vyper output does (Listing 5). [cmp] is LT / SGT / SLT; the check
   reverts when the comparison [v OP bound] comes out [bad]. *)
let emit_check e ~staged ~revert_label ~cmp ~revert_when_true bound =
  if staged then begin
    let slot = Emit.scratch e in
    Emit.push_u256 e bound;
    Emit.push_int e slot;
    Emit.op e Opcode.MSTORE;
    Emit.push_int e slot;
    Emit.op e Opcode.MLOAD
  end
  else Emit.push_u256 e bound;
  (* stack: [bound, v] *)
  Emit.op e (Opcode.DUP 2);
  (* [v, bound, v] *)
  Emit.op e cmp;
  if not revert_when_true then Emit.op e Opcode.ISZERO;
  Emit.jumpi_to e revert_label

(* Range checks for a Vyper basic type; the value stays on the stack. *)
let emit_range_checks e ~staged ~revert_label ty =
  match ty with
  | Abi.Abity.Address ->
    (* assert v < 2^160 *)
    emit_check e ~staged ~revert_label ~cmp:Opcode.LT ~revert_when_true:false
      bound_address
  | Abi.Abity.Bool ->
    emit_check e ~staged ~revert_label ~cmp:Opcode.LT ~revert_when_true:false
      bound_bool
  | Abi.Abity.Int 128 ->
    (* assert v <= max (revert when v > max) and v >= min *)
    emit_check e ~staged ~revert_label ~cmp:Opcode.SGT ~revert_when_true:true
      bound_int128_max;
    emit_check e ~staged ~revert_label ~cmp:Opcode.SLT ~revert_when_true:true
      bound_int128_min
  | Abi.Abity.Decimal ->
    emit_check e ~staged ~revert_label ~cmp:Opcode.SGT ~revert_when_true:true
      bound_decimal_max;
    emit_check e ~staged ~revert_label ~cmp:Opcode.SLT ~revert_when_true:true
      bound_decimal_min
  | Abi.Abity.Uint 256 | Abi.Abity.Bytes_n 32 -> ()
  | _ -> invalid_arg "Vyper.emit_range_checks: not a Vyper basic type"

(* Value on stack -> consumed. *)
let emit_basic_usage e (usage : Lang.usage) ty =
  (match ty with
  | Abi.Abity.Uint 256 | Abi.Abity.Int 128 | Abi.Abity.Decimal
    when usage.Lang.math ->
    Emit.op e (Opcode.DUP 1);
    Emit.push_int e 1;
    Emit.op e Opcode.ADD;
    Emit.op e Opcode.POP
  | Abi.Abity.Bytes_n 32 when usage.Lang.byte_access ->
    Emit.op e (Opcode.DUP 1);
    Emit.push_int e 0;
    Emit.op e Opcode.BYTE;
    Emit.op e Opcode.POP
  | _ -> ());
  Emit.op e Opcode.POP

let rec static_dims = function
  | Abi.Abity.Sarray (t, n) ->
    let dims, elem = static_dims t in
    (n :: dims, elem)
  | t -> ([], t)

(* Each parameter instance indexes with a distinct symbolic expression
   (callvalue + k), the way real contract code indexes different arrays
   with different variables; the analyser links a bound check to an item
   load by the index term they share. *)
let push_idx e k =
  Emit.op e Opcode.CALLVALUE;
  Emit.push_int e k;
  Emit.op e Opcode.ADD

let emit_param e ~version ~revert_label ~head spec =
  let staged = version.Version.memory_staged_bounds in
  let usage = spec.Lang.usage in
  match spec.Lang.ty with
  | Abi.Abity.Uint 256 | Abi.Abity.Int 128 | Abi.Abity.Address
  | Abi.Abity.Bool | Abi.Abity.Bytes_n 32 | Abi.Abity.Decimal ->
    Emit.push_int e head;
    Emit.op e Opcode.CALLDATALOAD;
    emit_range_checks e ~staged ~revert_label spec.Lang.ty;
    emit_basic_usage e usage spec.Lang.ty
  | Abi.Abity.Sarray _ ->
    (* fixed-size list: same pattern as a Solidity external static
       array (bound checks then an on-demand CALLDATALOAD), and the
       loaded item gets the element's range checks (R24, R27-R31) *)
    let k = Emit.fresh_idx e in
    let dims, elem = static_dims spec.Lang.ty in
    if usage.Lang.item_access then begin
      List.iter
        (fun n ->
          Emit.push_int e n;
          push_idx e k;
          Emit.op e Opcode.LT;
          Emit.op e Opcode.ISZERO;
          Emit.jumpi_to e revert_label)
        dims;
      Emit.push_int e 0;
      List.iteri
        (fun d n ->
          if d > 0 then begin
            Emit.push_int e n;
            Emit.op e Opcode.MUL
          end;
          push_idx e k;
          Emit.op e Opcode.ADD)
        dims;
      Emit.push_int e 32;
      Emit.op e Opcode.MUL;
      Emit.push_int e head;
      Emit.op e Opcode.ADD;
      Emit.op e Opcode.CALLDATALOAD;
      emit_range_checks e ~staged ~revert_label elem;
      emit_basic_usage e usage elem
    end
  | Abi.Abity.Vbytes max_len | Abi.Abity.Vstring max_len ->
    (* copy 32 (num field) + maxLen bytes starting at the num field;
       the padding past maxLen is not read (R23) *)
    let dst = Emit.alloc e (32 + max_len + 32) in
    Emit.push_int e head;
    Emit.op e Opcode.CALLDATALOAD;
    Emit.push_int e 4;
    Emit.op e Opcode.ADD;
    Emit.push_int e (32 + max_len);
    Emit.op e (Opcode.SWAP 1);
    Emit.push_int e dst;
    Emit.op e Opcode.CALLDATACOPY;
    (match spec.Lang.ty with
    | Abi.Abity.Vbytes _ when usage.Lang.byte_access ->
      (* individual byte read: distinguishes bytes[N] from string[N]
         (R26) *)
      Emit.push_int e (dst + 32);
      Emit.op e Opcode.MLOAD;
      Emit.push_int e 0;
      Emit.op e Opcode.BYTE;
      Emit.op e Opcode.POP
    | _ -> ())
  | Abi.Abity.Tuple _ ->
    invalid_arg "Vyper.emit_param: struct must be flattened"
  | _ -> invalid_arg "Vyper.emit_param: type not supported by Vyper"
