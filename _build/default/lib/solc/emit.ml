type t = {
  mutable rev_items : Evm.Asm.item list;
  mutable next_label : int;
  mutable mem_cursor : int;
  mutable next_idx : int;
}

let create () =
  { rev_items = []; next_label = 0; mem_cursor = 0x80; next_idx = 0 }
let op e o = e.rev_items <- Evm.Asm.Op o :: e.rev_items
let ops e os = List.iter (op e) os
let push_int e n = op e (Evm.Opcode.push n)
let push_u256 e v = op e (Evm.Opcode.push_u256 v)

let fresh_label e prefix =
  let name = Printf.sprintf "%s_%d" prefix e.next_label in
  e.next_label <- e.next_label + 1;
  name

let label e name = e.rev_items <- Evm.Asm.Label name :: e.rev_items
let push_label e name = e.rev_items <- Evm.Asm.Push_label name :: e.rev_items

let jump_to e name =
  push_label e name;
  op e Evm.Opcode.JUMP

let jumpi_to e name =
  push_label e name;
  op e Evm.Opcode.JUMPI

let alloc e n =
  let base = e.mem_cursor in
  e.mem_cursor <- base + ((n + 31) / 32 * 32);
  base

let scratch e = alloc e 32
let items e = List.rev e.rev_items

let fresh_idx e =
  e.next_idx <- e.next_idx + 1;
  e.next_idx
