(** Mutable instruction-stream builder used by the code generators. *)

type t

val create : unit -> t
val op : t -> Evm.Opcode.t -> unit
val ops : t -> Evm.Opcode.t list -> unit
val push_int : t -> int -> unit
val push_u256 : t -> Evm.U256.t -> unit

val fresh_label : t -> string -> string
(** [fresh_label e prefix] returns a new unique label name. *)

val label : t -> string -> unit
(** Place a label (assembles to JUMPDEST). *)

val push_label : t -> string -> unit
val jump_to : t -> string -> unit
(** [Push_label l; JUMP]. *)

val jumpi_to : t -> string -> unit
(** [Push_label l; JUMPI] — consumes the condition on the stack. *)

val alloc : t -> int -> int
(** [alloc e n] reserves [n] bytes of memory statically and returns the
    base address. The generator allocates memory statically rather than
    via the 0x40 free pointer — the accessing patterns SigRec keys on
    concern call-data reads, not memory placement. *)

val scratch : t -> int
(** A fresh 32-byte scratch slot (loop counters, saved offsets). *)

val fresh_idx : t -> int
(** A per-compilation counter for distinct symbolic index expressions
    (each parameter indexes with callvalue + k). *)

val items : t -> Evm.Asm.item list
(** Emission order. *)
