(** Solidity accessing-pattern code generation (paper §2.3.1).

    For each parameter this emits exactly the call-data access idioms the
    paper documents for solc output: masked CALLDATALOADs for basic
    types, CALLDATACOPY loops for arrays/bytes/strings of public
    functions, bound-checked on-demand CALLDATALOADs for external
    functions, and offset/num chains for nested arrays and dynamic
    structs. Every sequence starts and ends with an empty evaluation
    stack. *)

val head_offsets : Abi.Abity.t list -> int list
(** Absolute call-data offset of each parameter's head slot (the first
    one is 4, after the function id). *)

val emit_param :
  Emit.t ->
  optimize:bool ->
  visibility:Abi.Funsig.visibility ->
  revert_label:string ->
  head:int ->
  Lang.param_spec ->
  unit

val emit_usage_value : Emit.t -> Lang.usage -> Abi.Abity.t -> unit
(** The value of a basic-typed parameter is on top of the stack; apply
    the type's mask and the body-usage operations, then consume it. *)

val emit_inline_assembly_reads : Emit.t -> base:int -> int -> unit
(** Case-1 quirk: [n] raw CALLDATALOADs at [base], [base]+32, ... —
    locations past the declared parameters. *)
