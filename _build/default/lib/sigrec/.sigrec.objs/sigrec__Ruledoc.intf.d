lib/sigrec/ruledoc.mli: Format
