lib/sigrec/infer.mli: Abi Evm Hashtbl Rules Symex
