lib/sigrec/rules.ml: Abi Cfg Evm Hashtbl List Option Printf Symex U256
