lib/sigrec/ids.ml: Array Disasm Evm Hashtbl List Opcode String Symex U256
