lib/sigrec/ids.mli:
