lib/sigrec/aggregate.mli: Abi
