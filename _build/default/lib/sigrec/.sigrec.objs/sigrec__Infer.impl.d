lib/sigrec/infer.ml: Abi Hashtbl List Option Rules Stdlib Symex
