lib/sigrec/recover.ml: Abi Evm Format Ids Infer List String
