lib/sigrec/aggregate.ml: Abi Hashtbl List Option Recover
