lib/sigrec/recover.mli: Abi Format Hashtbl Rules Symex
