lib/sigrec/ruledoc.ml: Format List
