lib/sigrec/rules.mli: Abi Evm Hashtbl Symex
