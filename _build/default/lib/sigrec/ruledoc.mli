(** Machine-readable documentation of the 31 TASE rules (paper §3 and
    supplementary C): category, what each rule matches in the trace, and
    what it concludes. Used by the CLI's [--stats] output, the Fig. 19
    labels, and the documentation tests that keep this table in sync
    with {!Rules}. *)

type category =
  | Calldataload   (** §3.2: R1-R4 and the external-mode array rules *)
  | Calldatacopy   (** §3.3: R5-R10, R23 *)
  | Refinement     (** §3.4: R11-R18, R26-R31 *)
  | Structure      (** struct and nested arrays: R19, R21, R22 *)
  | Language       (** R20: Solidity vs Vyper discrimination *)

type t = {
  name : string;          (** "R1" .. "R31" *)
  category : category;
  matches : string;       (** the trace evidence the rule keys on *)
  concludes : string;     (** the inference it licenses *)
}

val all : t list
(** All 31 rules in order. *)

val find : string -> t option
val category_name : category -> string
val pp : Format.formatter -> t -> unit
