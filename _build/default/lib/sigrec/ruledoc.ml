type category =
  | Calldataload
  | Calldatacopy
  | Refinement
  | Structure
  | Language

type t = {
  name : string;
  category : category;
  matches : string;
  concludes : string;
}

let r name category matches concludes = { name; category; matches; concludes }

let all =
  [
    r "R1" Calldataload
      "two CALLDATALOADs where the second reads at (value of first) + 4"
      "the parameter is a dynamic array, bytes or string (offset field \
       followed by num field)";
    r "R2" Calldataload
      "an item load whose location adds the offset value and a 32-scaled \
       index, control-dependent on an LT against the num field plus n-1 \
       constant-bound LTs"
      "an n-dimensional dynamic array in an external function; the \
       constant bounds are the lower dimension sizes";
    r "R3" Calldataload
      "an item load at a constant base plus 32-scaled indices, without an \
       offset term, under constant-bound LT checks"
      "an n-dimensional static array in an external function; bounds give \
       the dimension sizes";
    r "R4" Calldataload
      "a 32-byte load at a constant call-data offset with no other \
       structural evidence"
      "a basic-type parameter, recorded as uint256 until refined";
    r "R5" Calldatacopy
      "exactly one CALLDATACOPY whose source involves an offset field"
      "a one-dimensional dynamic array, bytes or string in a public \
       function";
    r "R6" Calldatacopy
      "a CALLDATACOPY with constant source and length, no enclosing loop"
      "a one-dimensional static array in a public function (length/32 \
       items)";
    r "R7" Calldatacopy
      "the copy length is num * 32" "a one-dimensional dynamic array";
    r "R8" Calldatacopy
      "the copy length is ceil32(num) (division by 32 appears)"
      "a bytes or string value (single bytes are not 32-extended)";
    r "R9" Calldatacopy
      "CALLDATACOPYs of constant rows inside constant-bound loops"
      "an (n+1)-dimensional static array in a public function";
    r "R10" Calldatacopy
      "CALLDATACOPYs of constant rows inside a loop bounded by the num \
       field"
      "an (n+1)-dimensional dynamic array in a public function";
    r "R11" Refinement "AND with a low-ones mask of k bytes"
      "uint(8k) (the padding direction identifies an unsigned integer)";
    r "R12" Refinement "AND with a high-ones mask of k bytes"
      "bytes(k) (right padding identifies a fixed byte sequence)";
    r "R13" Refinement "SIGNEXTEND with constant k < 31"
      "int(8(k+1)) (sign extension identifies a signed integer)";
    r "R14" Refinement "two consecutive ISZEROs on the raw value" "bool";
    r "R15" Refinement
      "a signed-only instruction (SDIV/SMOD) consumes the unmasked value"
      "int256 (distinguishes it from uint256)";
    r "R16" Refinement
      "a 20-byte AND mask; arithmetic usage decides the final type"
      "address when the value is never used in math, uint160 otherwise";
    r "R17" Refinement
      "a single byte of a bytes/string-shaped value is read"
      "bytes (a string never has its individual bytes accessed)";
    r "R18" Refinement "BYTE applied to the raw 32-byte word"
      "bytes32 (an AND would have marked a uint256 byte extraction)";
    r "R19" Structure "a struct field classified as a nested array"
      "a struct containing array fields";
    r "R20" Language
      "comparison-based range checks guard raw loads instead of masks"
      "the contract is Vyper bytecode; Vyper refinements apply";
    r "R21" Structure
      "an offset field dereferenced at constant field offsets without an \
       intervening num-bounded loop"
      "a dynamic struct; each field classified recursively";
    r "R22" Structure
      "items of a dynamic dimension are themselves offset fields"
      "a nested array (a dynamic dimension below the top)";
    r "R23" Calldatacopy
      "a CALLDATACOPY of constant 32+maxLen bytes from offset+4 with no \
       num load"
      "a Vyper fixed-size byte array or string of maximum length maxLen";
    r "R24" Calldataload
      "the external-static-array pattern in Vyper bytecode"
      "a fixed-size list; bounds give the list sizes";
    r "R25" Calldataload
      "a 32-byte load in Vyper bytecode with no range check"
      "a Vyper basic parameter, recorded as uint256 until refined";
    r "R26" Refinement
      "a single byte of the copied fixed-size sequence is read"
      "bytes[maxLen] rather than string[maxLen]";
    r "R27" Refinement "an LT range check against 2^160" "address";
    r "R28" Refinement
      "signed range checks against +/- 2^127" "int128";
    r "R29" Refinement
      "signed range checks against the 10^10-scaled decimal bounds"
      "decimal";
    r "R30" Refinement "an LT range check against 2" "bool";
    r "R31" Refinement "BYTE applied to the raw word in Vyper bytecode"
      "bytes32";
  ]

let find name = List.find_opt (fun d -> d.name = name) all

let category_name = function
  | Calldataload -> "CALLDATALOAD"
  | Calldatacopy -> "CALLDATACOPY"
  | Refinement -> "refinement"
  | Structure -> "struct/nested"
  | Language -> "language"

let pp fmt d =
  Format.fprintf fmt "%s [%s]: %s => %s" d.name (category_name d.category)
    d.matches d.concludes
