(** SigRec's public entry point: runtime bytecode in, recovered function
    signatures out (paper Fig. 12). *)

type recovered = {
  selector : string;           (** 4-byte function id *)
  selector_hex : string;
  params : Abi.Abity.t list;
  rule_paths : string list list;
      (** per parameter: the rule path through the Fig. 13 decision
          tree that produced its type *)
  lang : Abi.Abity.lang;
  entry_pc : int;
}

val recover :
  ?stats:(string, int) Hashtbl.t ->
  ?config:Rules.config ->
  ?budget:Symex.Exec.budget ->
  string ->
  recovered list
(** [recover bytecode] extracts the function ids from the dispatcher and
    runs TASE on each function body. [stats] accumulates per-rule usage
    counts (Fig. 19). *)

val type_list : recovered -> string
(** Canonical comma-separated parameter list, e.g. ["uint8\[\],address"]. *)

val pp : Format.formatter -> recovered -> unit
