(* ABI types, canonical strings, signatures, and the call-data encoder
   checked against the layouts the paper documents in §2. *)

open Evm

let ty = Alcotest.testable Abi.Abity.pp Abi.Abity.equal

let test_to_string () =
  let open Abi.Abity in
  let cases =
    [
      (Uint 256, "uint256"); (Int 8, "int8"); (Address, "address");
      (Bool, "bool"); (Bytes_n 4, "bytes4"); (Bytes, "bytes");
      (String_t, "string");
      (Sarray (Sarray (Uint 256, 3), 2), "uint256[3][2]");
      (Darray (Sarray (Uint 8, 3)), "uint8[3][]");
      (Darray (Darray (Uint 256)), "uint256[][]");
      (Sarray (Darray (Uint 256), 2), "uint256[][2]");
      (Tuple [ Darray (Uint 256); Uint 256 ], "(uint256[],uint256)");
      (Decimal, "decimal"); (Vbytes 50, "bytes[50]"); (Vstring 20, "string[20]");
    ]
  in
  List.iter
    (fun (t, s) -> Alcotest.(check string) s s (to_string t))
    cases

let test_of_string () =
  let open Abi.Abity in
  List.iter
    (fun (s, t) -> Alcotest.check ty s t (of_string s))
    [
      ("uint256", Uint 256); ("uint", Uint 256); ("int", Int 256);
      ("byte", Bytes_n 1);
      ("uint256[3][2]", Sarray (Sarray (Uint 256, 3), 2));
      ("uint8[]", Darray (Uint 8));
      ("bytes[50]", Vbytes 50);
      ("(uint256[],uint256)", Tuple [ Darray (Uint 256); Uint 256 ]);
      ("((uint8,bool),address)", Tuple [ Tuple [ Uint 8; Bool ]; Address ]);
    ];
  Alcotest.(check bool) "bad width rejected" true
    (of_string_opt "uint7" = None);
  Alcotest.(check bool) "uint0 rejected" true (of_string_opt "uint0" = None);
  Alcotest.(check bool) "bytes33 rejected" true
    (of_string_opt "bytes33" = None);
  Alcotest.(check bool) "garbage rejected" true (of_string_opt "foo" = None)

let test_is_dynamic_head_size () =
  let open Abi.Abity in
  Alcotest.(check bool) "bytes dynamic" true (is_dynamic Bytes);
  Alcotest.(check bool) "static array of dynamic is dynamic" true
    (is_dynamic (Sarray (Bytes, 2)));
  Alcotest.(check bool) "static array static" false
    (is_dynamic (Sarray (Uint 8, 4)));
  Alcotest.(check int) "uint head" 32 (head_size (Uint 8));
  Alcotest.(check int) "static array head" (6 * 32)
    (head_size (Sarray (Sarray (Uint 256, 3), 2)));
  Alcotest.(check int) "dynamic head is one offset slot" 32
    (head_size (Darray (Uint 256)));
  Alcotest.(check int) "static struct head flattens" 64
    (head_size (Tuple [ Uint 256; Uint 256 ]))

let test_valid_in () =
  let open Abi.Abity in
  Alcotest.(check bool) "solidity rejects decimal" false
    (valid_in Solidity Decimal);
  Alcotest.(check bool) "vyper rejects uint8" false (valid_in Vyper (Uint 8));
  Alcotest.(check bool) "vyper accepts int128" true (valid_in Vyper (Int 128));
  Alcotest.(check bool) "vyper accepts fixed list" true
    (valid_in Vyper (Sarray (Decimal, 3)));
  Alcotest.(check bool) "vyper rejects dynamic array" false
    (valid_in Vyper (Darray (Uint 256)))

let test_nested_detection () =
  let open Abi.Abity in
  Alcotest.(check bool) "uint[][] nested" true
    (is_nested_array (Darray (Darray (Uint 256))));
  Alcotest.(check bool) "uint[][2] nested" true
    (is_nested_array (Sarray (Darray (Uint 256), 2)));
  Alcotest.(check bool) "uint[3][] not nested" false
    (is_nested_array (Darray (Sarray (Uint 256, 3))));
  Alcotest.(check bool) "uint[3][2] not nested" false
    (is_nested_array (Sarray (Sarray (Uint 256, 3), 2)))

let test_funsig () =
  let f =
    Abi.Funsig.make "transfer" [ Abi.Abity.Address; Abi.Abity.Uint 256 ]
  in
  Alcotest.(check string) "canonical" "transfer(address,uint256)"
    (Abi.Funsig.canonical f);
  Alcotest.(check string) "selector" "a9059cbb" (Abi.Funsig.selector_hex f)

(* -- encoder against the paper's layouts -------------------------------- *)

let word n = U256.to_bytes_be (U256.of_int n)

let test_encode_uint32 () =
  (* Fig. 3: uint32 value 0x11223344 is left-padded to 32 bytes *)
  let enc =
    Abi.Encode.encode_args [ Abi.Abity.Uint 32 ]
      [ Abi.Value.VUint (U256.of_hex "0x11223344") ]
  in
  Alcotest.(check int) "32 bytes" 32 (String.length enc);
  Alcotest.(check string) "left padded"
    (String.make 28 '\000' ^ "\x11\x22\x33\x44")
    enc

let test_encode_bytes4 () =
  (* Fig. 4: bytes4 'abcd' is right-padded *)
  let enc =
    Abi.Encode.encode_args [ Abi.Abity.Bytes_n 4 ] [ Abi.Value.VFixed "abcd" ]
  in
  Alcotest.(check string) "right padded" ("abcd" ^ String.make 28 '\000') enc

let test_encode_static_array () =
  (* Fig. 5: uint256[3][2] is six consecutive words *)
  let ty = Abi.Abity.Sarray (Abi.Abity.Sarray (Abi.Abity.Uint 256, 3), 2) in
  let v k = Abi.Value.VUint (U256.of_int k) in
  let arg =
    Abi.Value.VArray
      [ Abi.Value.VArray [ v 1; v 2; v 3 ]; Abi.Value.VArray [ v 4; v 5; v 6 ] ]
  in
  let enc = Abi.Encode.encode_args [ ty ] [ arg ] in
  Alcotest.(check int) "192 bytes" 192 (String.length enc);
  Alcotest.(check string) "items in order"
    (String.concat "" (List.map word [ 1; 2; 3; 4; 5; 6 ]))
    enc

let test_encode_dynamic_array () =
  (* Fig. 6: offset field, then num, then items *)
  let ty = Abi.Abity.Darray (Abi.Abity.Uint 256) in
  let arg =
    Abi.Value.VArray
      [ Abi.Value.VUint (U256.of_int 7); Abi.Value.VUint (U256.of_int 8) ]
  in
  let enc = Abi.Encode.encode_args [ ty ] [ arg ] in
  Alcotest.(check string) "layout"
    (word 32 ^ word 2 ^ word 7 ^ word 8)
    enc

let test_encode_nested_array () =
  (* Fig. 7: uint[][] with argument [[1,2],[3]] *)
  let ty = Abi.Abity.Darray (Abi.Abity.Darray (Abi.Abity.Uint 256)) in
  let v k = Abi.Value.VUint (U256.of_int k) in
  let arg =
    Abi.Value.VArray
      [ Abi.Value.VArray [ v 1; v 2 ]; Abi.Value.VArray [ v 3 ] ]
  in
  let enc = Abi.Encode.encode_args [ ty ] [ arg ] in
  (* offset1=32 | num1=2 | off(a)=64 | off(b)=160 | num(a)=2 | 1 | 2 |
     num(b)=1 | 3 *)
  Alcotest.(check string) "fig 7 layout"
    (word 32 ^ word 2 ^ word 64 ^ word 160 ^ word 2 ^ word 1 ^ word 2
    ^ word 1 ^ word 3)
    enc

let test_encode_dynamic_struct () =
  (* Fig. 9: (uint[],uint) with argument ([1,2], 3) *)
  let ty =
    Abi.Abity.Tuple [ Abi.Abity.Darray (Abi.Abity.Uint 256); Abi.Abity.Uint 256 ]
  in
  let v k = Abi.Value.VUint (U256.of_int k) in
  let arg = Abi.Value.VTuple [ Abi.Value.VArray [ v 1; v 2 ]; v 3 ] in
  let enc = Abi.Encode.encode_args [ ty ] [ arg ] in
  (* offset1=32 | tail: [ off(field0)=64 | 3 | num=2 | 1 | 2 ] *)
  Alcotest.(check string) "fig 9 layout"
    (word 32 ^ word 64 ^ word 3 ^ word 2 ^ word 1 ^ word 2)
    enc

let test_encode_bytes_padding () =
  let enc =
    Abi.Encode.encode_args [ Abi.Abity.Bytes ] [ Abi.Value.VBytes "abcde" ]
  in
  (* offset | length 5 | 'abcde' + 27 zero bytes *)
  Alcotest.(check string) "bytes layout"
    (word 32 ^ word 5 ^ "abcde" ^ String.make 27 '\000')
    enc

let test_encode_rejects_ill_typed () =
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       ignore (Abi.Encode.encode_args [ Abi.Abity.Bool ] []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong value raises" true
    (try
       ignore
         (Abi.Encode.encode_args [ Abi.Abity.Bool ] [ Abi.Value.VBytes "x" ]);
       false
     with Invalid_argument _ -> true)

let test_type_check () =
  let open Abi in
  Alcotest.(check bool) "uint8 range" false
    (Value.type_check (Abity.Uint 8) (Value.VUint (U256.of_int 256)));
  Alcotest.(check bool) "uint8 max ok" true
    (Value.type_check (Abity.Uint 8) (Value.VUint (U256.of_int 255)));
  Alcotest.(check bool) "int8 -128 ok" true
    (Value.type_check (Abity.Int 8) (Value.VInt (U256.neg (U256.of_int 128))));
  Alcotest.(check bool) "int8 -129 bad" false
    (Value.type_check (Abity.Int 8) (Value.VInt (U256.neg (U256.of_int 129))));
  Alcotest.(check bool) "static size enforced" false
    (Value.type_check
       (Abity.Sarray (Abity.Bool, 2))
       (Value.VArray [ Value.VBool true ]));
  Alcotest.(check bool) "vyper max length" false
    (Value.type_check (Abity.Vbytes 3) (Value.VBytes "abcd"))

(* -- properties ---------------------------------------------------------- *)

let rng = Random.State.make [| 777 |]

let arb_sol_type =
  QCheck.make
    ~print:Abi.Abity.to_string
    (QCheck.Gen.map (fun () -> Abi.Valgen.sol_type ~abiv2:true rng) QCheck.Gen.unit)

let prop_string_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"canonical string roundtrip" ~count:400
       arb_sol_type (fun t ->
         Abi.Abity.equal t (Abi.Abity.of_string (Abi.Abity.to_string t))))

let prop_valgen_well_typed =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"valgen is well-typed" ~count:400 arb_sol_type
       (fun t -> Abi.Value.type_check t (Abi.Valgen.value rng t)))

let prop_encode_length =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"encoding is 32-byte aligned" ~count:300
       arb_sol_type (fun t ->
         let v = Abi.Valgen.value rng t in
         String.length (Abi.Encode.encode_args [ t ] [ v ]) mod 32 = 0))

let suite =
  [
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "is_dynamic / head_size" `Quick test_is_dynamic_head_size;
    Alcotest.test_case "valid_in" `Quick test_valid_in;
    Alcotest.test_case "nested array detection" `Quick test_nested_detection;
    Alcotest.test_case "funsig selectors" `Quick test_funsig;
    Alcotest.test_case "encode uint32 (Fig 3)" `Quick test_encode_uint32;
    Alcotest.test_case "encode bytes4 (Fig 4)" `Quick test_encode_bytes4;
    Alcotest.test_case "encode static array (Fig 5)" `Quick test_encode_static_array;
    Alcotest.test_case "encode dynamic array (Fig 6)" `Quick test_encode_dynamic_array;
    Alcotest.test_case "encode nested array (Fig 7)" `Quick test_encode_nested_array;
    Alcotest.test_case "encode dynamic struct (Fig 9)" `Quick test_encode_dynamic_struct;
    Alcotest.test_case "encode bytes padding" `Quick test_encode_bytes_padding;
    Alcotest.test_case "encode rejects ill-typed" `Quick test_encode_rejects_ill_typed;
    Alcotest.test_case "value type_check" `Quick test_type_check;
    prop_string_roundtrip;
    prop_valgen_well_typed;
    prop_encode_length;
  ]
