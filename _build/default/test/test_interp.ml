(* The concrete interpreter: instruction semantics, control flow,
   call-data handling, failure modes. *)

open Evm

let run ?(calldata = "") ops =
  Interp.execute ~code:(Asm.assemble_ops ops) ~calldata ()

let run_items ?(calldata = "") items =
  Interp.execute ~code:(Asm.assemble items) ~calldata ()

(* run a program that stores its result via MSTORE(0, x); RETURN(0,32) *)
let returns_word ?(calldata = "") ops =
  let epilogue =
    Opcode.[ push 0; MSTORE; push 32; push 0; RETURN ]
  in
  match run ~calldata (ops @ epilogue) with
  | { Interp.outcome = Interp.Returned data; _ } when String.length data = 32
    ->
    U256.of_bytes_be data
  | r ->
    Alcotest.failf "expected 32-byte return, got %a" Interp.pp_outcome
      r.Interp.outcome

let u = Alcotest.testable U256.pp U256.equal

let test_arithmetic () =
  Alcotest.check u "3+4" (U256.of_int 7)
    (returns_word Opcode.[ push 4; push 3; ADD ]);
  Alcotest.check u "10-3" (U256.of_int 7)
    (returns_word Opcode.[ push 3; push 10; SUB ]);
  Alcotest.check u "6*7" (U256.of_int 42)
    (returns_word Opcode.[ push 7; push 6; MUL ]);
  Alcotest.check u "42/5" (U256.of_int 8)
    (returns_word Opcode.[ push 5; push 42; DIV ]);
  Alcotest.check u "2^10" (U256.of_int 1024)
    (returns_word Opcode.[ push 10; push 2; EXP ]);
  Alcotest.check u "7 mod 4" (U256.of_int 3)
    (returns_word Opcode.[ push 4; push 7; MOD ])

let test_stack_ops () =
  Alcotest.check u "dup2 picks the second" (U256.of_int 1)
    (returns_word Opcode.[ push 1; push 2; DUP 2; SWAP 2; POP; POP ]);
  (* [9;5] -- SWAP1 -> [5;9] -- POP drops the new top, leaving 9 *)
  Alcotest.check u "swap1" (U256.of_int 9)
    (returns_word Opcode.[ push 5; push 9; SWAP 1; POP ])

let test_comparison_chain () =
  Alcotest.check u "1 < 2" U256.one
    (returns_word Opcode.[ push 2; push 1; LT ]);
  Alcotest.check u "2 < 1 is 0" U256.zero
    (returns_word Opcode.[ push 1; push 2; LT ]);
  Alcotest.check u "iszero(0)" U256.one
    (returns_word Opcode.[ push 0; ISZERO ]);
  Alcotest.check u "eq" U256.one
    (returns_word Opcode.[ push 9; push 9; EQ ])

let test_memory () =
  Alcotest.check u "mstore/mload" (U256.of_int 0xabcd)
    (returns_word Opcode.[ push 0xabcd; push 64; MSTORE; push 64; MLOAD ]);
  Alcotest.check u "mstore8 writes one byte" (U256.of_int 0xff)
    (returns_word
       Opcode.[ push 0xff; push 95; MSTORE8; push 64; MLOAD;
                push_u256 (U256.of_int 0xff); AND ])

let test_storage () =
  let res =
    run Opcode.[ push 0x1234; push 7; SSTORE; STOP ]
  in
  Alcotest.(check bool) "stopped" true (res.Interp.outcome = Interp.Stopped);
  Alcotest.check u "persisted" (U256.of_int 0x1234)
    (Machine.Storage.load res.Interp.storage (U256.of_int 7))

let test_calldata () =
  let calldata = "\x01\x02\x03\x04" ^ U256.to_bytes_be (U256.of_int 99) in
  Alcotest.check u "calldataload 4" (U256.of_int 99)
    (returns_word ~calldata Opcode.[ push 4; CALLDATALOAD ]);
  Alcotest.check u "calldatasize" (U256.of_int 36)
    (returns_word ~calldata Opcode.[ CALLDATASIZE ]);
  (* reads past the end are zero-padded *)
  Alcotest.check u "past end" U256.zero
    (returns_word ~calldata Opcode.[ push 100; CALLDATALOAD ]);
  (* calldatacopy then mload *)
  Alcotest.check u "calldatacopy" (U256.of_int 99)
    (returns_word ~calldata
       Opcode.[ push 32; push 4; push 64; CALLDATACOPY; push 64; MLOAD ])

let test_sha3 () =
  (* keccak of 4 bytes staged in memory matches the library digest *)
  let got =
    returns_word
      Opcode.[ push 0x2a; push 67; MSTORE8; push 4; push 64; SHA3 ]
  in
  Alcotest.check u "sha3 through memory"
    (U256.of_bytes_be (Keccak.digest "\x00\x00\x00\x2a"))
    got

let test_bad_jump () =
  let res = run Opcode.[ push 3; JUMP ] in
  (match res.Interp.outcome with
  | Interp.Bad_jump 3 -> ()
  | o -> Alcotest.failf "expected bad jump, got %a" Interp.pp_outcome o);
  (* jumping to a JUMPDEST works *)
  let res =
    run_items
      Asm.[ Push_label "ok"; Op Opcode.JUMP; Op Opcode.INVALID; Label "ok";
            Op Opcode.STOP ]
  in
  Alcotest.(check bool) "good jump" true (res.Interp.outcome = Interp.Stopped)

let test_invalid_and_revert () =
  Alcotest.(check bool) "invalid" true
    ((run Opcode.[ INVALID ]).Interp.outcome = Interp.Invalid_op);
  (match (run Opcode.[ push 0; push 0; REVERT ]).Interp.outcome with
  | Interp.Reverted "" -> ()
  | o -> Alcotest.failf "expected revert, got %a" Interp.pp_outcome o);
  Alcotest.(check bool) "stack underflow" true
    ((run Opcode.[ POP ]).Interp.outcome = Interp.Stack_error)

let test_gas_exhaustion () =
  (* an infinite loop must end with Out_of_gas, not hang *)
  let code =
    Asm.assemble
      Asm.[ Label "l"; Op (Opcode.push 1); Op Opcode.POP; Push_label "l";
            Op Opcode.JUMP ]
  in
  let res = Interp.execute ~gas_limit:10_000 ~code ~calldata:"" () in
  Alcotest.(check bool) "out of gas" true
    (res.Interp.outcome = Interp.Out_of_gas)

let test_env_values () =
  let env = Interp.default_env in
  Alcotest.check u "callvalue" env.Interp.callvalue
    (returns_word Opcode.[ CALLVALUE ]);
  Alcotest.check u "caller" env.Interp.caller
    (returns_word Opcode.[ CALLER ])

let test_trace () =
  let code = Asm.assemble_ops Opcode.[ push 1; push 2; ADD; POP; STOP ] in
  let res = Interp.execute ~record_trace:true ~code ~calldata:"" () in
  Alcotest.(check (list int)) "pcs in order" [ 0; 2; 4; 5; 6 ]
    res.Interp.trace_pcs

(* differential check: interpreter arithmetic agrees with U256 *)
let prop_differential =
  let gen = QCheck.Gen.(pair (map Int64.abs int64) (map Int64.abs int64)) in
  let arb = QCheck.make gen in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"interp agrees with U256 on binops" ~count:100 arb
       (fun (a64, b64) ->
         let a = U256.of_int64 a64 and b = U256.of_int64 b64 in
         List.for_all
           (fun (op, reference) ->
             let got =
               returns_word Opcode.[ push_u256 b; push_u256 a; op ]
             in
             U256.equal got (reference a b))
           Opcode.
             [
               (ADD, U256.add); (SUB, U256.sub); (MUL, U256.mul);
               (DIV, U256.div); (MOD, U256.rem); (AND, U256.logand);
               (OR, U256.logor); (XOR, U256.logxor);
             ]))

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "stack ops" `Quick test_stack_ops;
    Alcotest.test_case "comparisons" `Quick test_comparison_chain;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "storage" `Quick test_storage;
    Alcotest.test_case "calldata" `Quick test_calldata;
    Alcotest.test_case "sha3" `Quick test_sha3;
    Alcotest.test_case "bad jump" `Quick test_bad_jump;
    Alcotest.test_case "invalid and revert" `Quick test_invalid_and_revert;
    Alcotest.test_case "gas exhaustion" `Quick test_gas_exhaustion;
    Alcotest.test_case "environment" `Quick test_env_values;
    Alcotest.test_case "trace recording" `Quick test_trace;
    prop_differential;
  ]
