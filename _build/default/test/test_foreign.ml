(* "Foreign" code generators: function bodies hand-assembled in styles
   the bundled compiler never emits. The rules are defined over EVM
   semantics, not over our own generator's idioms, and these tests keep
   that honest (the reproduction must not be a tautology between
   lib/solc and lib/sigrec). *)

open Evm

(* Assemble a single-function contract around a hand-written body. The
   dispatcher is also written differently from the bundled compiler:
   the selector comparison is EQ-first with the id pushed before DUP. *)
let contract_of_body ~selector body =
  Asm.(
    [
      (* free pointer, then dispatch *)
      Op (Opcode.push 0x80); Op (Opcode.push 0x40); Op Opcode.MSTORE;
      Op (Opcode.push 0); Op Opcode.CALLDATALOAD;
      Op (Opcode.push 0xe0); Op Opcode.SHR;
      Op (Opcode.PUSH (4, U256.of_bytes_be selector));
      Op (Opcode.DUP 2);
      Op Opcode.EQ;
      Push_label "body";
      Op Opcode.JUMPI;
      Op Opcode.STOP;
      Label "body";
      Op Opcode.POP;
    ]
    @ body
    @ [ Op Opcode.STOP; Label "revert"; Op (Opcode.push 0);
        Op (Opcode.push 0); Op Opcode.REVERT ])
  |> Asm.assemble

let recover_one code =
  match Sigrec.Recover.recover code with
  | [ r ] -> Sigrec.Recover.type_list r
  | rs -> Printf.sprintf "<%d fns>" (List.length rs)

let sel name = Keccak.selector name

(* style 1: the mask constant is loaded from memory instead of being a
   PUSH immediately before the AND *)
let test_mask_via_memory () =
  let body =
    Asm.(
      [
        Op (Opcode.push_u256 (U256.ones_low 20));
        Op (Opcode.push 0x20); Op Opcode.MSTORE;
        Op (Opcode.push 4); Op Opcode.CALLDATALOAD;
        Op (Opcode.push 0x20); Op Opcode.MLOAD;
        Op Opcode.AND;
        Op Opcode.POP;
      ])
  in
  let code = contract_of_body ~selector:(sel "m(address)") body in
  Alcotest.(check string) "address via staged mask" "address"
    (recover_one code)

(* style 2: two parameters read in reverse order (second first) *)
let test_reverse_read_order () =
  let body =
    Asm.(
      [
        Op (Opcode.push 36); Op Opcode.CALLDATALOAD;
        Op Opcode.ISZERO; Op Opcode.ISZERO; Op Opcode.POP;
        Op (Opcode.push 4); Op Opcode.CALLDATALOAD;
        Op (Opcode.push 3); Op Opcode.SIGNEXTEND; Op Opcode.POP;
      ])
  in
  let code = contract_of_body ~selector:(sel "r(int32,bool)") body in
  (* the order in the recovered list must follow the call-data layout,
     not the reading order *)
  Alcotest.(check string) "layout order" "int32,bool" (recover_one code)

(* style 3: external dynamic array walked with a stack-held index from
   CALLER instead of our callvalue+k convention *)
let test_foreign_dynamic_array_walk () =
  let body =
    Asm.(
      [
        (* offset and num *)
        Op (Opcode.push 4); Op Opcode.CALLDATALOAD;
        Op (Opcode.push 4); Op Opcode.ADD;
        Op (Opcode.DUP 1); Op Opcode.CALLDATALOAD;
        (* stack: [num, abs] ; idx = CALLER (a free symbol) *)
        Op Opcode.CALLER;
        (* bound check: idx < num *)
        Op (Opcode.DUP 2); Op (Opcode.DUP 2); Op Opcode.LT;
        Op Opcode.ISZERO; Push_label "revert"; Op Opcode.JUMPI;
        (* item load at abs + 32 + idx*32; stack: [idx, num, abs] *)
        Op (Opcode.push 32); Op Opcode.MUL;
        Op (Opcode.SWAP 1);
        Op (Opcode.SWAP 2);
        (* stack: [abs, idx*32, num] *)
        Op (Opcode.push 32); Op Opcode.ADD;
        Op Opcode.ADD;
        (* stack: [abs+32 + idx*32, num] *)
        Op Opcode.CALLDATALOAD;
        Op (Opcode.push_u256 (U256.ones_low 1)); Op Opcode.AND;
        Op Opcode.POP; Op Opcode.POP;
      ])
  in
  let code = contract_of_body ~selector:(sel "w(uint8[])") body in
  Alcotest.(check string) "foreign walk" "uint8[]" (recover_one code)

(* style 4: masks applied twice, through a DUPed shared constant *)
let test_shared_mask_constant () =
  let body =
    Asm.(
      [
        Op (Opcode.push_u256 (U256.ones_low 2));
        (* two uint16 parameters masked with the same DUPed constant *)
        Op (Opcode.push 4); Op Opcode.CALLDATALOAD;
        Op (Opcode.DUP 2); Op Opcode.AND; Op Opcode.POP;
        Op (Opcode.push 36); Op Opcode.CALLDATALOAD;
        Op (Opcode.DUP 2); Op Opcode.AND; Op Opcode.POP;
        Op Opcode.POP;
      ])
  in
  let code = contract_of_body ~selector:(sel "s(uint16,uint16)") body in
  Alcotest.(check string) "shared constant" "uint16,uint16"
    (recover_one code)

(* style 5: the offset/num reads of a public bytes are interleaved with
   unrelated computation *)
let test_interleaved_bytes () =
  let body =
    Asm.(
      [
        Op (Opcode.push 4); Op Opcode.CALLDATALOAD;
        (* unrelated noise between the two R1 loads *)
        Op Opcode.CALLVALUE; Op Opcode.CALLVALUE; Op Opcode.ADD;
        Op Opcode.POP;
        Op (Opcode.push 4); Op Opcode.ADD;
        Op (Opcode.DUP 1); Op Opcode.CALLDATALOAD;
        (* stack: [num, abs]; copy ceil32(num) bytes *)
        Op (Opcode.DUP 1);
        Op (Opcode.push 31); Op Opcode.ADD;
        Op (Opcode.push 32); Op (Opcode.SWAP 1); Op Opcode.DIV;
        Op (Opcode.push 32); Op Opcode.MUL;
        (* stack: [len, num, abs] *)
        Op (Opcode.SWAP 2);
        (* [abs, num, len] *)
        Op (Opcode.push 32); Op Opcode.ADD;
        Op (Opcode.SWAP 1); Op (Opcode.SWAP 2);
        (* [len, abs+32, num] -> need (len, src, dst): push order len src dst *)
        Op (Opcode.push 0x100);
        (* [dst, len, src, num] — rearrange to [dst, src, len, num] *)
        Op (Opcode.SWAP 2);
        Op (Opcode.SWAP 1);
        Op (Opcode.SWAP 2);
        Op Opcode.CALLDATACOPY;
        Op Opcode.POP;
        (* byte access marks it as bytes, not string *)
        Op (Opcode.push 0x100); Op Opcode.MLOAD;
        Op (Opcode.push 0); Op Opcode.BYTE; Op Opcode.POP;
      ])
  in
  let code = contract_of_body ~selector:(sel "b(bytes)") body in
  Alcotest.(check string) "interleaved bytes" "bytes" (recover_one code)

(* style 6: a uint256 used heavily but never masked stays uint256 *)
let test_heavy_unmasked_usage () =
  let body =
    Asm.(
      [
        Op (Opcode.push 4); Op Opcode.CALLDATALOAD;
        Op (Opcode.DUP 1); Op (Opcode.DUP 1); Op Opcode.MUL;
        Op Opcode.ADD;
        Op (Opcode.push 7); Op Opcode.ADD;
        Op Opcode.POP;
      ])
  in
  let code = contract_of_body ~selector:(sel "u(uint256)") body in
  Alcotest.(check string) "stays uint256" "uint256" (recover_one code)

let suite =
  [
    Alcotest.test_case "mask staged through memory" `Quick test_mask_via_memory;
    Alcotest.test_case "reverse read order" `Quick test_reverse_read_order;
    Alcotest.test_case "foreign dynamic-array walk" `Quick test_foreign_dynamic_array_walk;
    Alcotest.test_case "shared mask constant" `Quick test_shared_mask_constant;
    Alcotest.test_case "interleaved bytes reads" `Quick test_interleaved_bytes;
    Alcotest.test_case "heavy unmasked usage" `Quick test_heavy_unmasked_usage;
  ]
