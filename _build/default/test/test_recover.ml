(* End-to-end recovery: compile a signature with the pattern-faithful
   code generator, recover it from the bytecode alone, compare with the
   ground truth. This is the core claim of the system. *)

let recover_types ?version ?(usage = Solc.Lang.default_usage) fsig =
  let code = Solc.Compile.compile_fn ?version (Solc.Lang.fn_of_sig ~usage fsig) in
  match Sigrec.Recover.recover code with
  | [ r ] when r.Sigrec.Recover.selector = Abi.Funsig.selector fsig ->
    Sigrec.Recover.type_list r
  | [ _ ] -> "<wrong selector>"
  | rs -> Printf.sprintf "<%d functions>" (List.length rs)

let expect ?version ?usage ?(vis = Abi.Funsig.Public)
    ?(lang = Abi.Abity.Solidity) tys () =
  let fsig = Abi.Funsig.make ~visibility:vis ~lang "f" tys in
  let want = String.concat "," (List.map Abi.Abity.to_string tys) in
  Alcotest.(check string)
    (Printf.sprintf "%s %s" want
       (match vis with Abi.Funsig.Public -> "public" | _ -> "external"))
    want
    (recover_types ?version ?usage fsig)

let both tys () =
  expect ~vis:Abi.Funsig.Public tys ();
  expect ~vis:Abi.Funsig.External tys ()

open Abi.Abity

(* every basic-type width in one big sweep, both visibilities *)
let test_all_basic_widths () =
  let widths = List.init 32 (fun i -> 8 * (i + 1)) in
  List.iter (fun m -> both [ Uint m ] ()) widths;
  List.iter (fun m -> both [ Int m ] ()) widths;
  List.iter (fun m -> both [ Bytes_n m ] ()) (List.init 32 (fun i -> i + 1));
  both [ Address ] ();
  both [ Bool ] ()

let test_basic_combinations () =
  both [ Address; Uint 256 ] ();
  both [ Uint 8; Int 64; Bool; Bytes_n 4 ] ();
  both [ Uint 256; Int 256; Bytes_n 32; Uint 160 ] ();
  both [ Bool; Bool; Bool; Bool; Bool ] ()

let test_static_arrays () =
  both [ Sarray (Uint 256, 1) ] ();
  both [ Sarray (Uint 8, 10) ] ();
  both [ Sarray (Sarray (Uint 256, 3), 2) ] ();
  both [ Sarray (Sarray (Sarray (Uint 256, 2), 3), 2) ] ();
  both [ Sarray (Address, 4); Bool ] ();
  both [ Uint 32; Sarray (Bytes_n 8, 3) ] ()

let test_dynamic_arrays () =
  both [ Darray (Uint 256) ] ();
  both [ Darray (Uint 8); Address ] ();
  both [ Darray (Sarray (Uint 8, 3)) ] ();
  both [ Darray (Sarray (Sarray (Uint 16, 2), 4)) ] ();
  both [ Darray (Address); Darray (Uint 256) ] ()

let test_bytes_strings () =
  both [ Bytes ] ();
  both [ String_t ] ();
  both [ Bytes; String_t ] ();
  both [ String_t; Uint 8; Bytes ] ()

let test_nested_and_structs () =
  both [ Darray (Darray (Uint 256)) ] ();
  both [ Sarray (Darray (Uint 256), 2) ] ();
  both [ Tuple [ Darray (Uint 256); Uint 256 ] ] ();
  both [ Tuple [ Uint 256; Darray (Uint 8); Bytes ] ] ()

let test_mixed_layout () =
  both [ Uint 32; Darray (Uint 256); Bytes; Sarray (Uint 8, 2); Address ] ();
  both [ Bytes; Bytes; Uint 8 ] ();
  both [ Sarray (Uint 256, 2); Darray (Bool); Int 128 ] ()

let test_vyper_types () =
  let vy tys = expect ~lang:Vyper tys () in
  vy [ Address ]; vy [ Bool ]; vy [ Int 128 ]; vy [ Decimal ];
  vy [ Uint 256 ]; vy [ Bytes_n 32 ];
  vy [ Sarray (Uint 256, 4) ];
  vy [ Sarray (Sarray (Decimal, 2), 3) ];
  vy [ Sarray (Int 128, 3); Address ];
  vy [ Vbytes 50 ]; vy [ Vstring 20 ];
  vy [ Vbytes 50; Vstring 20 ];
  vy [ Uint 256; Vbytes 10; Decimal ];
  vy [ Int 128; Decimal; Uint 256; Bytes_n 32 ]

let test_all_versions () =
  (* the same signature must recover under every compiler version *)
  let tys = [ Address; Darray (Uint 8); Uint 32 ] in
  List.iter
    (fun version ->
      expect ~version ~vis:Abi.Funsig.Public tys ();
      expect ~version ~vis:Abi.Funsig.External tys ())
    Solc.Version.solidity_versions;
  List.iter
    (fun version ->
      expect ~version ~lang:Vyper [ Int 128; Sarray (Uint 256, 2) ] ())
    Solc.Version.vyper_versions

let test_multi_function_contract () =
  let sigs =
    [
      Abi.Funsig.make "alpha" [ Uint 8 ];
      Abi.Funsig.make "beta" [ Darray (Address) ];
      Abi.Funsig.make ~visibility:Abi.Funsig.External "gamma"
        [ Sarray (Uint 256, 3); Bool ];
      Abi.Funsig.make "delta" [ Bytes; Int 64 ];
    ]
  in
  let code = Solc.Compile.compile (Solc.Compile.contract_of_sigs sigs) in
  let recovered = Sigrec.Recover.recover code in
  Alcotest.(check int) "all functions found" 4 (List.length recovered);
  List.iter
    (fun fsig ->
      match
        List.find_opt
          (fun r -> r.Sigrec.Recover.selector = Abi.Funsig.selector fsig)
          recovered
      with
      | Some r ->
        Alcotest.(check string)
          (Abi.Funsig.canonical fsig)
          (String.concat "," (List.map to_string fsig.Abi.Funsig.params))
          (Sigrec.Recover.type_list r)
      | None -> Alcotest.failf "missing %s" (Abi.Funsig.canonical fsig))
    sigs

let test_no_params () =
  let fsig = Abi.Funsig.make "ping" [] in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  match Sigrec.Recover.recover code with
  | [ r ] -> Alcotest.(check int) "no params" 0 (List.length r.Sigrec.Recover.params)
  | _ -> Alcotest.fail "expected one function"

let test_selector_extraction () =
  let sigs =
    List.init 10 (fun i -> Abi.Funsig.make (Printf.sprintf "fn%d" i) [ Bool ])
  in
  let code = Solc.Compile.compile (Solc.Compile.contract_of_sigs sigs) in
  let entries = Sigrec.Ids.extract code in
  Alcotest.(check int) "all ids found" 10 (List.length entries);
  List.iter2
    (fun fsig e ->
      Alcotest.(check string) "dispatch order preserved"
        (Abi.Funsig.selector_hex fsig)
        (Evm.Hex.encode e.Sigrec.Ids.selector))
    sigs entries

(* -- the documented inaccuracy cases (§5.2) ----------------------------- *)

let recover_fn fn =
  let code = Solc.Compile.compile_fn fn in
  match Sigrec.Recover.recover code with
  | [ r ] -> Sigrec.Recover.type_list r
  | _ -> "<multi>"

let test_case1_inline_assembly () =
  (* a parameterless function reading two words via inline assembly is
     recovered with two uint256 parameters *)
  let fn = Solc.Lang.fn ~asm_reads:2 (Abi.Funsig.make "start" []) [] in
  Alcotest.(check string) "case 1" "uint256,uint256" (recover_fn fn)

let test_case2_conversion () =
  (* declared uint256 immediately cast to uint8: recovered as uint8 *)
  let fsig = Abi.Funsig.make "setGen0Stat" [ Uint 256 ] in
  let fn =
    Solc.Lang.fn fsig
      [ Solc.Lang.param ~quirk:(Solc.Lang.Converted (Uint 8)) (Uint 256) ]
  in
  Alcotest.(check string) "case 2" "uint8" (recover_fn fn)

let test_case4_storage_ref () =
  (* a storage-reference parameter carries only a slot number *)
  let fsig = Abi.Funsig.make "useRef" [ Bytes ] in
  let fn =
    Solc.Lang.fn fsig [ Solc.Lang.param ~quirk:Solc.Lang.Storage_ref Bytes ]
  in
  Alcotest.(check string) "case 4" "uint256" (recover_fn fn)

let test_case5_const_index () =
  (* optimised external static array accessed with a constant index:
     no bound checks survive, the load looks like a basic parameter *)
  let fsig =
    Abi.Funsig.make ~visibility:Abi.Funsig.External "g"
      [ Sarray (Uint 256, 3) ]
  in
  let fn =
    Solc.Lang.fn fsig
      [ Solc.Lang.param ~quirk:Solc.Lang.Const_index_optimized
          (Sarray (Uint 256, 3)) ]
  in
  let version =
    List.find (fun v -> v.Solc.Version.optimize) Solc.Version.solidity_versions
  in
  let code = Solc.Compile.compile_fn ~version fn in
  (match Sigrec.Recover.recover code with
  | [ r ] ->
    Alcotest.(check string) "case 5a" "uint256" (Sigrec.Recover.type_list r)
  | _ -> Alcotest.fail "expected one function");
  (* without optimisation the bound checks remain and the array is
     recovered *)
  let version =
    List.find
      (fun v -> not v.Solc.Version.optimize)
      Solc.Version.solidity_versions
  in
  let code = Solc.Compile.compile_fn ~version fn in
  match Sigrec.Recover.recover code with
  | [ r ] ->
    Alcotest.(check string) "unoptimised recovers" "uint256[3]"
      (Sigrec.Recover.type_list r)
  | _ -> Alcotest.fail "expected one function"

let test_case5_unaccessed_bytes () =
  (* bytes never byte-accessed is indistinguishable from string *)
  let usage = { Solc.Lang.default_usage with Solc.Lang.byte_access = false } in
  let fsig = Abi.Funsig.make "h" [ Bytes ] in
  Alcotest.(check string) "case 5b" "string" (recover_types ~usage fsig)

let test_case5_static_struct () =
  (* a static struct's layout is identical to its flattened fields *)
  let fsig = Abi.Funsig.make "s" [ Tuple [ Uint 256; Uint 256 ] ] in
  Alcotest.(check string) "case 5c" "uint256,uint256" (recover_types fsig)

let test_usage_matters () =
  (* without any usage hints, refinements degrade exactly as documented *)
  let usage = Solc.Lang.plain_usage in
  (* uint160 with no math is indistinguishable from address *)
  Alcotest.(check string) "uint160 w/o math -> address" "address"
    (recover_types ~usage (Abi.Funsig.make "p" [ Uint 160 ]));
  (* int256 with no signed op falls back to uint256 *)
  Alcotest.(check string) "int256 w/o sdiv -> uint256" "uint256"
    (recover_types ~usage (Abi.Funsig.make "p" [ Int 256 ]));
  (* bytes32 with no BYTE falls back to uint256 *)
  Alcotest.(check string) "bytes32 w/o byte -> uint256" "uint256"
    (recover_types ~usage (Abi.Funsig.make "p" [ Bytes_n 32 ]))

let test_rule_paths () =
  (* the paper's own derivation example (§4.2 step 1): "SigRec regards
     a parameter as a bytes in a public function if R1, R5, R8, and R17
     are fulfilled in order" *)
  let fsig = Abi.Funsig.make "p" [ Bytes ] in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  (match Sigrec.Recover.recover code with
  | [ r ] -> (
    match r.Sigrec.Recover.rule_paths with
    | [ path ] ->
      Alcotest.(check (list string)) "bytes path"
        [ "R1"; "R5"; "R8"; "R17" ] path
    | _ -> Alcotest.fail "expected one path")
  | _ -> Alcotest.fail "expected one function");
  (* and an address: R4 default then the R16 refinement *)
  let fsig = Abi.Funsig.make "q" [ Address ] in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  match Sigrec.Recover.recover code with
  | [ r ] ->
    Alcotest.(check (list (list string))) "address path"
      [ [ "R4"; "R16" ] ]
      r.Sigrec.Recover.rule_paths
  | _ -> Alcotest.fail "expected one function"

(* property: a random lossless signature always roundtrips exactly *)
let prop_random_signature_roundtrip =
  let rng = Random.State.make [| 424242 |] in
  let counter = ref 0 in
  let rec lossless ty =
    (* exclude the shapes the paper documents as unrecoverable *)
    match ty with
    | Tuple fields -> is_dynamic ty && List.for_all lossless fields
    | Sarray (t, _) | Darray t -> lossless t
    | _ -> true
  in
  let gen_sig =
    QCheck.Gen.map
      (fun n ->
        incr counter;
        let nparams = 1 + (n mod 4) in
        let rec pick () =
          let t = Abi.Valgen.sol_type ~abiv2:true rng in
          if lossless t then t else pick ()
        in
        let tys = List.init nparams (fun _ -> pick ()) in
        let vis =
          if Random.State.bool rng then Abi.Funsig.Public
          else Abi.Funsig.External
        in
        Abi.Funsig.make ~visibility:vis
          (Printf.sprintf "prop_%d" !counter)
          tys)
      QCheck.Gen.small_nat
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random signatures roundtrip" ~count:150
       (QCheck.make ~print:Abi.Funsig.canonical gen_sig)
       (fun fsig ->
         let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
         match Sigrec.Recover.recover code with
         | [ r ] ->
           r.Sigrec.Recover.selector = Abi.Funsig.selector fsig
           && List.length r.Sigrec.Recover.params
              = List.length fsig.Abi.Funsig.params
           && List.for_all2 Abi.Abity.equal r.Sigrec.Recover.params
                fsig.Abi.Funsig.params
         | _ -> false))

let suite =
  [
    Alcotest.test_case "all basic widths" `Slow test_all_basic_widths;
    Alcotest.test_case "basic combinations" `Quick test_basic_combinations;
    Alcotest.test_case "static arrays" `Quick test_static_arrays;
    Alcotest.test_case "dynamic arrays" `Quick test_dynamic_arrays;
    Alcotest.test_case "bytes and strings" `Quick test_bytes_strings;
    Alcotest.test_case "nested arrays and structs" `Quick test_nested_and_structs;
    Alcotest.test_case "mixed layouts" `Quick test_mixed_layout;
    Alcotest.test_case "vyper types" `Quick test_vyper_types;
    Alcotest.test_case "all compiler versions" `Slow test_all_versions;
    Alcotest.test_case "multi-function contract" `Quick test_multi_function_contract;
    Alcotest.test_case "parameterless function" `Quick test_no_params;
    Alcotest.test_case "selector extraction" `Quick test_selector_extraction;
    Alcotest.test_case "case 1: inline assembly" `Quick test_case1_inline_assembly;
    Alcotest.test_case "case 2: type conversion" `Quick test_case2_conversion;
    Alcotest.test_case "case 4: storage reference" `Quick test_case4_storage_ref;
    Alcotest.test_case "case 5a: optimised const index" `Quick test_case5_const_index;
    Alcotest.test_case "case 5b: unaccessed bytes" `Quick test_case5_unaccessed_bytes;
    Alcotest.test_case "case 5c: static struct" `Quick test_case5_static_struct;
    Alcotest.test_case "usage-dependent refinement" `Quick test_usage_matters;
    Alcotest.test_case "rule paths (Fig 13)" `Quick test_rule_paths;
    prop_random_signature_roundtrip;
  ]
