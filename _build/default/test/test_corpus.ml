(* The corpus generator: determinism, executability of every generated
   contract, and the calibrated accuracy bands of DESIGN.md. *)

let accuracy samples =
  let correct = ref 0 and unexpected = ref 0 in
  List.iter
    (fun s ->
      let fsig = Solc.Corpus.truth s in
      let ok =
        match Sigrec.Recover.recover s.Solc.Corpus.code with
        | [ r ] ->
          r.Sigrec.Recover.selector = Abi.Funsig.selector fsig
          && List.length r.Sigrec.Recover.params
             = List.length fsig.Abi.Funsig.params
          && List.for_all2 Abi.Abity.equal r.Sigrec.Recover.params
               fsig.Abi.Funsig.params
        | _ -> false
      in
      if ok then incr correct
      else if not (Solc.Corpus.expected_failure s) then incr unexpected)
    samples;
  ( 100.0 *. float_of_int !correct /. float_of_int (List.length samples),
    !unexpected )

let test_determinism () =
  let a = Solc.Corpus.dataset3 ~seed:42 ~n:30 in
  let b = Solc.Corpus.dataset3 ~seed:42 ~n:30 in
  List.iter2
    (fun x y ->
      Alcotest.(check string) "same bytecode" (Evm.Hex.encode x.Solc.Corpus.code)
        (Evm.Hex.encode y.Solc.Corpus.code))
    a b;
  let c = Solc.Corpus.dataset3 ~seed:43 ~n:30 in
  Alcotest.(check bool) "different seed differs" true
    (List.exists2
       (fun x y -> x.Solc.Corpus.code <> y.Solc.Corpus.code)
       a c)

let test_contracts_execute () =
  (* every generated contract must run to completion on well-formed
     input (or revert through a bound check, never crash the VM) *)
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun s ->
      let fsig = Solc.Corpus.truth s in
      let args = List.map (Abi.Valgen.value rng) fsig.Abi.Funsig.params in
      let calldata =
        Abi.Encode.encode_call
          ~selector:(Abi.Funsig.selector fsig)
          fsig.Abi.Funsig.params args
      in
      let res = Evm.Interp.execute ~code:s.Solc.Corpus.code ~calldata () in
      match res.Evm.Interp.outcome with
      | Evm.Interp.Stopped | Evm.Interp.Returned _ | Evm.Interp.Reverted _ ->
        ()
      | o ->
        Alcotest.failf "%s: unexpected outcome %a" (Abi.Funsig.canonical fsig)
          Evm.Interp.pp_outcome o)
    (Solc.Corpus.dataset3 ~seed:9 ~n:150)

let test_wrong_selector_falls_through () =
  List.iter
    (fun s ->
      let res =
        Evm.Interp.execute ~code:s.Solc.Corpus.code
          ~calldata:("\xde\xad\xbe\xef" ^ String.make 96 '\000')
          ()
      in
      Alcotest.(check bool) "fallback stops" true
        (res.Evm.Interp.outcome = Evm.Interp.Stopped))
    (Solc.Corpus.dataset3 ~seed:9 ~n:30)

let test_accuracy_bands () =
  let acc3, un3 = accuracy (Solc.Corpus.dataset3 ~seed:7 ~n:400) in
  Alcotest.(check int) "ds3 no unexpected failures" 0 un3;
  Alcotest.(check bool) "ds3 accuracy in band" true (acc3 >= 97.0);
  let acc2, un2 = accuracy (Solc.Corpus.dataset2 ~seed:7 ~n:200) in
  Alcotest.(check int) "ds2 no unexpected failures" 0 un2;
  Alcotest.(check bool) "ds2 accuracy ~ 100" true (acc2 >= 99.0);
  let accv, unv = accuracy (Solc.Corpus.vyper_set ~seed:7 ~n:200) in
  Alcotest.(check int) "vyper no unexpected failures" 0 unv;
  Alcotest.(check bool) "vyper accuracy in band" true (accv >= 90.0);
  let acca, una = accuracy (Solc.Corpus.abiv2_set ~seed:7 ~n:150) in
  Alcotest.(check int) "abiv2 no unexpected failures" 0 una;
  Alcotest.(check bool) "abiv2 accuracy in band (paper: 61.3%)" true
    (acca >= 40.0 && acca <= 80.0)

let test_planted_failures_fail () =
  (* every sample flagged expected_failure must actually fail — the
     flag must not overshoot *)
  let samples = Solc.Corpus.dataset3 ~seed:11 ~n:600 in
  let planted = List.filter Solc.Corpus.expected_failure samples in
  Alcotest.(check bool) "some failures planted" true (List.length planted > 0);
  List.iter
    (fun s ->
      let fsig = Solc.Corpus.truth s in
      let ok =
        match Sigrec.Recover.recover s.Solc.Corpus.code with
        | [ r ] ->
          List.length r.Sigrec.Recover.params
          = List.length fsig.Abi.Funsig.params
          && List.for_all2 Abi.Abity.equal r.Sigrec.Recover.params
               fsig.Abi.Funsig.params
        | _ -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s is genuinely unrecoverable"
           (Abi.Funsig.canonical fsig))
        false ok)
    planted

let test_fuzz_set_shape () =
  let samples = Solc.Corpus.fuzz_set ~seed:3 ~n:50 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "bug planted" true (s.Solc.Corpus.fn.Solc.Lang.bug <> None);
      match s.Solc.Corpus.fn.Solc.Lang.fsig.Abi.Funsig.params with
      | first :: _ ->
        Alcotest.(check bool) "first param basic non-bool" true
          (Abi.Abity.is_basic first && first <> Abi.Abity.Bool)
      | [] -> Alcotest.fail "fuzz functions have parameters")
    samples

let test_versioned_coverage () =
  let groups = Solc.Corpus.versioned ~seed:3 ~per_version:5 in
  Alcotest.(check int) "all versions present"
    (List.length Solc.Version.solidity_versions
    + List.length Solc.Version.vyper_versions)
    (List.length groups);
  List.iter
    (fun (v, samples) ->
      Alcotest.(check int)
        (Printf.sprintf "%s has samples" v.Solc.Version.name)
        5 (List.length samples))
    groups

let suite =
  [
    Alcotest.test_case "deterministic generation" `Quick test_determinism;
    Alcotest.test_case "contracts execute" `Slow test_contracts_execute;
    Alcotest.test_case "wrong selector fallback" `Quick test_wrong_selector_falls_through;
    Alcotest.test_case "accuracy bands" `Slow test_accuracy_bands;
    Alcotest.test_case "planted failures fail" `Slow test_planted_failures_fail;
    Alcotest.test_case "fuzz set shape" `Quick test_fuzz_set_shape;
    Alcotest.test_case "versioned coverage" `Quick test_versioned_coverage;
  ]
