(* Cross-contract evidence aggregation (paper §7): the evidence order,
   pointwise joins, majority-arity voting, and the end-to-end gain. *)

open Abi.Abity

let ty = Alcotest.testable Abi.Abity.pp Abi.Abity.equal

let test_specificity () =
  Alcotest.(check bool) "uint8 beats uint256" true
    (Sigrec.Aggregate.more_specific (Uint 8) (Uint 256));
  Alcotest.(check bool) "bytes beats string" true
    (Sigrec.Aggregate.more_specific Bytes String_t);
  Alcotest.(check bool) "uint160 beats address" true
    (Sigrec.Aggregate.more_specific (Uint 160) Address);
  Alcotest.(check bool) "not reflexive" false
    (Sigrec.Aggregate.more_specific Bool Bool);
  Alcotest.(check bool) "unrelated types incomparable" false
    (Sigrec.Aggregate.more_specific Bool (Bytes_n 4))

let test_join_type () =
  Alcotest.check ty "uint256 join int64" (Int 64)
    (Sigrec.Aggregate.join_type (Uint 256) (Int 64));
  Alcotest.check ty "string join bytes" Bytes
    (Sigrec.Aggregate.join_type String_t Bytes);
  Alcotest.check ty "address join uint160" (Uint 160)
    (Sigrec.Aggregate.join_type Address (Uint 160));
  Alcotest.check ty "arrays join pointwise"
    (Darray (Uint 8))
    (Sigrec.Aggregate.join_type (Darray (Uint 256)) (Darray (Uint 8)));
  Alcotest.check ty "static arrays need equal size"
    (Sarray (Uint 8, 3))
    (Sigrec.Aggregate.join_type (Sarray (Uint 256, 3)) (Sarray (Uint 8, 3)));
  Alcotest.check ty "tuples join fieldwise"
    (Tuple [ Bytes; Uint 8 ])
    (Sigrec.Aggregate.join_type
       (Tuple [ String_t; Uint 256 ])
       (Tuple [ Bytes; Uint 8 ]))

let test_join_all_majority () =
  (* a body that missed a parameter must be outvoted *)
  (match
     Sigrec.Aggregate.join_all
       [ [ Uint 256; String_t ]; [ Uint 8; String_t ]; [ Uint 256 ] ]
   with
  | Some joined ->
    Alcotest.(check (list ty)) "majority arity, joined types"
      [ Uint 8; String_t ] joined
  | None -> Alcotest.fail "expected a join");
  Alcotest.(check bool) "empty input" true
    (Sigrec.Aggregate.join_all [] = None)

let test_end_to_end_gain () =
  (* a bytes parameter: one body never touches bytes (string recovered),
     another reads a byte (bytes recovered); the join gets it right *)
  let fsig = Abi.Funsig.make "agg" [ Bytes ] in
  let body usage = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig ~usage fsig) in
  let blind =
    body { Solc.Lang.default_usage with Solc.Lang.byte_access = false }
  in
  let seeing = body Solc.Lang.default_usage in
  let rec_params code =
    match Sigrec.Recover.recover code with
    | [ r ] -> r.Sigrec.Recover.params
    | _ -> []
  in
  Alcotest.(check (list ty)) "blind body says string" [ String_t ]
    (rec_params blind);
  Alcotest.(check (list ty)) "seeing body says bytes" [ Bytes ]
    (rec_params seeing);
  match Sigrec.Aggregate.join_all [ rec_params blind; rec_params seeing ] with
  | Some joined -> Alcotest.(check (list ty)) "join says bytes" [ Bytes ] joined
  | None -> Alcotest.fail "expected a join"

let test_recover_many () =
  let sigs =
    [
      Abi.Funsig.make "one" [ Uint 8 ];
      Abi.Funsig.make "two" [ Address; Bytes ];
    ]
  in
  let codes =
    List.map
      (fun fsig -> Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig))
      sigs
    (* plus a second contract implementing both functions *)
    @ [ Solc.Compile.compile (Solc.Compile.contract_of_sigs sigs) ]
  in
  let merged = Sigrec.Aggregate.recover_many codes in
  Alcotest.(check int) "two ids" 2 (List.length merged);
  List.iter
    (fun fsig ->
      match List.assoc_opt (Abi.Funsig.selector fsig) merged with
      | Some params ->
        Alcotest.(check (list ty))
          (Abi.Funsig.canonical fsig)
          fsig.Abi.Funsig.params params
      | None -> Alcotest.failf "missing %s" (Abi.Funsig.canonical fsig))
    sigs

let test_multibody_statistics () =
  let groups = Solc.Corpus.multi_body ~seed:5 ~n:40 ~bodies:4 in
  let matches truth tys =
    List.length tys = List.length truth.Abi.Funsig.params
    && List.for_all2 Abi.Abity.equal tys truth.Abi.Funsig.params
  in
  let single_ok = ref 0 and single_total = ref 0 and agg_ok = ref 0 in
  List.iter
    (fun (truth, codes) ->
      let recoveries =
        List.filter_map
          (fun code ->
            match
              List.find_opt
                (fun r ->
                  r.Sigrec.Recover.selector = Abi.Funsig.selector truth)
                (Sigrec.Recover.recover code)
            with
            | Some r -> Some r.Sigrec.Recover.params
            | None -> None)
          codes
      in
      List.iter
        (fun tys ->
          incr single_total;
          if matches truth tys then incr single_ok)
        recoveries;
      match Sigrec.Aggregate.join_all recoveries with
      | Some j when matches truth j -> incr agg_ok
      | _ -> ())
    groups;
  let single = float_of_int !single_ok /. float_of_int !single_total in
  let agg = float_of_int !agg_ok /. 40.0 in
  Alcotest.(check bool)
    (Printf.sprintf "aggregation helps (%.2f -> %.2f)" single agg)
    true (agg > single)

let suite =
  [
    Alcotest.test_case "specificity order" `Quick test_specificity;
    Alcotest.test_case "join_type" `Quick test_join_type;
    Alcotest.test_case "join_all majority" `Quick test_join_all_majority;
    Alcotest.test_case "end-to-end bytes/string" `Quick test_end_to_end_gain;
    Alcotest.test_case "recover_many" `Quick test_recover_many;
    Alcotest.test_case "multi-body statistics" `Slow test_multibody_statistics;
  ]
