(* Keccak-256 against published vectors and the Ethereum selectors the
   ecosystem knows by heart. *)

open Evm

let check_hex msg want = Alcotest.(check string) msg want

let test_vectors () =
  (* original Keccak (pre-NIST padding) test vectors *)
  check_hex "empty"
    "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
    (Keccak.digest_hex "");
  check_hex "abc"
    "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
    (Keccak.digest_hex "abc");
  check_hex "The quick brown fox..."
    "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"
    (Keccak.digest_hex "The quick brown fox jumps over the lazy dog")

let test_block_boundaries () =
  (* messages straddling the 136-byte rate boundary *)
  let at n = Keccak.digest_hex (String.make n 'a') in
  Alcotest.(check int) "len 135 hash length" 64 (String.length (at 135));
  Alcotest.(check int) "len 136 hash length" 64 (String.length (at 136));
  Alcotest.(check int) "len 137 hash length" 64 (String.length (at 137));
  Alcotest.(check bool) "135 <> 136" true (at 135 <> at 136);
  Alcotest.(check bool) "136 <> 137" true (at 136 <> at 137)

let test_selectors () =
  let sel s = Hex.encode (Keccak.selector s) in
  check_hex "transfer" "a9059cbb" (sel "transfer(address,uint256)");
  check_hex "approve" "095ea7b3" (sel "approve(address,uint256)");
  check_hex "transferFrom" "23b872dd"
    (sel "transferFrom(address,address,uint256)");
  check_hex "balanceOf" "70a08231" (sel "balanceOf(address)");
  check_hex "totalSupply" "18160ddd" (sel "totalSupply()")

let prop_length =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"digest is always 32 bytes" ~count:100
       QCheck.(string_of_size (Gen.int_bound 500))
       (fun s -> String.length (Keccak.digest s) = 32))

let prop_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"digest deterministic" ~count:50
       QCheck.(string_of_size (Gen.int_bound 300))
       (fun s -> Keccak.digest s = Keccak.digest s))

let prop_injective_ish =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"distinct inputs hash differently" ~count:100
       QCheck.(pair small_string small_string)
       (fun (a, b) ->
         QCheck.assume (a <> b);
         Keccak.digest a <> Keccak.digest b))

let suite =
  [
    Alcotest.test_case "published vectors" `Quick test_vectors;
    Alcotest.test_case "rate boundaries" `Quick test_block_boundaries;
    Alcotest.test_case "well-known selectors" `Quick test_selectors;
    prop_length;
    prop_deterministic;
    prop_injective_ish;
  ]
