(* Failure injection: SigRec is meant to run on arbitrary deployed
   bytecode, so recovery must terminate and never raise on garbage,
   truncated or bit-flipped input. *)

let no_exn name f =
  match f () with
  | _ -> ()
  | exception e ->
    Alcotest.failf "%s raised %s" name (Printexc.to_string e)

let test_empty_and_garbage () =
  no_exn "empty" (fun () -> Sigrec.Recover.recover "");
  no_exn "single byte" (fun () -> Sigrec.Recover.recover "\xfe");
  no_exn "all zeroes" (fun () -> Sigrec.Recover.recover (String.make 200 '\000'));
  no_exn "all ff" (fun () -> Sigrec.Recover.recover (String.make 200 '\xff'));
  no_exn "ascii" (fun () -> Sigrec.Recover.recover "hello, this is not bytecode")

let test_truncated_contracts () =
  let fsig =
    Abi.Funsig.make "t" [ Abi.Abity.Darray (Abi.Abity.Uint 8); Abi.Abity.Bytes ]
  in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  (* every prefix must be analysable without crashing *)
  let n = String.length code in
  List.iter
    (fun k ->
      let cut = String.sub code 0 (n * k / 10) in
      no_exn (Printf.sprintf "prefix %d0%%" k) (fun () ->
          Sigrec.Recover.recover cut))
    [ 1; 3; 5; 7; 9 ]

let test_bitflipped_contracts () =
  let fsig =
    Abi.Funsig.make "t" [ Abi.Abity.Uint 64; Abi.Abity.Sarray (Abi.Abity.Bool, 2) ]
  in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  let rng = Random.State.make [| 123 |] in
  for _ = 1 to 60 do
    let b = Bytes.of_string code in
    let pos = Random.State.int rng (Bytes.length b) in
    Bytes.set b pos (Char.chr (Random.State.int rng 256));
    no_exn "bit flip" (fun () -> Sigrec.Recover.recover (Bytes.to_string b))
  done

let test_random_bytecode_fuzz () =
  let rng = Random.State.make [| 321 |] in
  for _ = 1 to 60 do
    let len = 20 + Random.State.int rng 400 in
    let junk = String.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    no_exn "random bytes" (fun () -> Sigrec.Recover.recover junk)
  done

let test_interpreter_fuzz () =
  (* the concrete interpreter must also terminate on garbage *)
  let rng = Random.State.make [| 654 |] in
  for _ = 1 to 80 do
    let len = 10 + Random.State.int rng 300 in
    let junk = String.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    let cd = String.init 36 (fun _ -> Char.chr (Random.State.int rng 256)) in
    no_exn "interp junk" (fun () ->
        Evm.Interp.execute ~gas_limit:100_000 ~code:junk ~calldata:cd ())
  done

let test_parchecker_fuzz () =
  let rng = Random.State.make [| 987 |] in
  let tys =
    [ Abi.Abity.Darray (Abi.Abity.Uint 8); Abi.Abity.Bytes;
      Abi.Abity.Tuple [ Abi.Abity.Darray (Abi.Abity.Uint 256); Abi.Abity.Bool ] ]
  in
  for _ = 1 to 120 do
    let len = Random.State.int rng 300 in
    let junk = String.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    no_exn "parchecker junk" (fun () -> Tools.Parchecker.check_call tys junk);
    no_exn "decode junk" (fun () -> Abi.Decode.decode_call tys junk)
  done

let test_erays_fuzz () =
  let rng = Random.State.make [| 555 |] in
  for _ = 1 to 30 do
    let len = 20 + Random.State.int rng 200 in
    let junk = String.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    no_exn "lift junk" (fun () -> Tools.Erays.lift junk);
    no_exn "enhance junk" (fun () -> Tools.Eraysplus.enhance junk)
  done

(* recovery on a mutated dispatcher still terminates within budget *)
let test_pathological_loops () =
  (* a contract that is one big symbolic loop *)
  let open Evm in
  let items =
    Asm.[
      Op (Opcode.push 0); Op Opcode.CALLDATALOAD;
      Push_label "f"; Op Opcode.JUMPI; Op Opcode.STOP;
      Label "f";
      Op Opcode.CALLVALUE;
      Push_label "f";
      Op Opcode.JUMPI;
      Op Opcode.STOP;
    ]
  in
  let code = Asm.assemble items in
  no_exn "self-loop" (fun () ->
      Symex.Exec.run ~code ~entry:0 ~init_stack:[] ())

let suite =
  [
    Alcotest.test_case "garbage inputs" `Quick test_empty_and_garbage;
    Alcotest.test_case "truncated contracts" `Quick test_truncated_contracts;
    Alcotest.test_case "bit-flipped contracts" `Quick test_bitflipped_contracts;
    Alcotest.test_case "random bytecode" `Quick test_random_bytecode_fuzz;
    Alcotest.test_case "interpreter on junk" `Quick test_interpreter_fuzz;
    Alcotest.test_case "parchecker/decoder on junk" `Quick test_parchecker_fuzz;
    Alcotest.test_case "erays on junk" `Quick test_erays_fuzz;
    Alcotest.test_case "pathological loops bounded" `Quick test_pathological_loops;
  ]
