(* Machine-state components: stack discipline, byte-addressed memory,
   zero-extended call data, sparse storage. *)

open Evm

let u = Alcotest.testable U256.pp U256.equal

let test_stack_push_pop () =
  let s = Machine.Stack.create () in
  Machine.Stack.push s U256.one;
  Machine.Stack.push s (U256.of_int 2);
  Alcotest.(check int) "depth" 2 (Machine.Stack.depth s);
  Alcotest.check u "pop order" (U256.of_int 2) (Machine.Stack.pop s);
  Alcotest.check u "pop order" U256.one (Machine.Stack.pop s);
  Alcotest.check_raises "underflow" Machine.Stack.Underflow (fun () ->
      ignore (Machine.Stack.pop s))

let test_stack_dup_swap () =
  let s = Machine.Stack.create () in
  List.iter
    (fun n -> Machine.Stack.push s (U256.of_int n))
    [ 1; 2; 3; 4 ] (* top is 4 *);
  Machine.Stack.dup s 3;
  Alcotest.check u "dup3 copies third" (U256.of_int 2) (Machine.Stack.peek s 0);
  ignore (Machine.Stack.pop s);
  Machine.Stack.swap s 3;
  Alcotest.check u "swap3 top" U256.one (Machine.Stack.peek s 0);
  Alcotest.check u "swap3 deep" (U256.of_int 4) (Machine.Stack.peek s 3)

let test_stack_overflow () =
  let s = Machine.Stack.create () in
  for _ = 1 to 1024 do
    Machine.Stack.push s U256.zero
  done;
  Alcotest.check_raises "1025th push overflows" Machine.Stack.Overflow
    (fun () -> Machine.Stack.push s U256.zero)

let test_memory_words () =
  let m = Machine.Memory.create () in
  Alcotest.check u "uninitialised reads zero" U256.zero
    (Machine.Memory.load_word m 0x40);
  Machine.Memory.store_word m 0x40 (U256.of_int 0xbeef);
  Alcotest.check u "store/load" (U256.of_int 0xbeef)
    (Machine.Memory.load_word m 0x40);
  (* unaligned read straddles the stored word *)
  Alcotest.check u "shifted read"
    (U256.shift_left (U256.of_int 0xbeef) 8)
    (Machine.Memory.load_word m 0x41)

let test_memory_growth () =
  let m = Machine.Memory.create () in
  Machine.Memory.store_byte m 100_000 0xab;
  Alcotest.(check int) "size rounded to words" (((100_001 + 31) / 32) * 32)
    (Machine.Memory.size m);
  Alcotest.(check string) "byte readable" "\xab"
    (Machine.Memory.load_bytes m 100_000 1)

let test_memory_bytes () =
  let m = Machine.Memory.create () in
  Machine.Memory.store_bytes m 10 "hello";
  Alcotest.(check string) "roundtrip" "hello" (Machine.Memory.load_bytes m 10 5);
  Alcotest.(check string) "zero fill" "\000\000" (Machine.Memory.load_bytes m 20 2)

let test_calldata_zero_extension () =
  let cd = Machine.Calldata.of_string "\x01\x02" in
  Alcotest.(check int) "size" 2 (Machine.Calldata.size cd);
  Alcotest.check u "word read zero-extends"
    (U256.of_bytes_be ("\x01\x02" ^ String.make 30 '\000'))
    (Machine.Calldata.load_word cd 0);
  Alcotest.check u "fully past end" U256.zero (Machine.Calldata.load_word cd 64);
  Alcotest.(check string) "read with padding" "\x02\x00\x00"
    (Machine.Calldata.read cd 1 3)

let test_storage () =
  let s = Machine.Storage.create () in
  Alcotest.check u "empty slot" U256.zero (Machine.Storage.load s (U256.of_int 5));
  Machine.Storage.store s (U256.of_int 5) (U256.of_int 99);
  Alcotest.check u "stored" (U256.of_int 99) (Machine.Storage.load s (U256.of_int 5));
  Machine.Storage.store s (U256.of_int 5) U256.zero;
  Alcotest.(check int) "zero store clears" 0
    (List.length (Machine.Storage.bindings s))

let suite =
  [
    Alcotest.test_case "stack push/pop" `Quick test_stack_push_pop;
    Alcotest.test_case "stack dup/swap" `Quick test_stack_dup_swap;
    Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
    Alcotest.test_case "memory words" `Quick test_memory_words;
    Alcotest.test_case "memory growth" `Quick test_memory_growth;
    Alcotest.test_case "memory bytes" `Quick test_memory_bytes;
    Alcotest.test_case "calldata zero extension" `Quick test_calldata_zero_extension;
    Alcotest.test_case "storage" `Quick test_storage;
  ]
