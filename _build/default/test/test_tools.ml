(* The application layer: EFSD/baselines, ParChecker, the fuzzer pair
   and the Erays pipeline. *)

open Evm

(* -- EFSD and baselines -------------------------------------------------- *)

let test_efsd () =
  let db = Tools.Efsd.create () in
  let f = Abi.Funsig.make "foo" [ Abi.Abity.Bool ] in
  Alcotest.(check bool) "miss" true (Tools.Efsd.lookup db (Abi.Funsig.selector f) = None);
  Tools.Efsd.add db f;
  (match Tools.Efsd.lookup db (Abi.Funsig.selector f) with
  | Some g -> Alcotest.(check bool) "hit" true (Abi.Funsig.equal f g)
  | None -> Alcotest.fail "expected hit");
  let sigs =
    List.init 200 (fun i ->
        Abi.Funsig.make (Printf.sprintf "f%d" i) [ Abi.Abity.Uint 256 ])
  in
  let db = Tools.Efsd.create () in
  Tools.Efsd.populate db ~coverage:0.5 ~seed:1 sigs;
  let size = Tools.Efsd.size db in
  Alcotest.(check bool) "coverage approximately half" true
    (size > 70 && size < 130)

let test_db_tools () =
  let f = Abi.Funsig.make "bar" [ Abi.Abity.Address ] in
  let db = Tools.Efsd.create () in
  Tools.Efsd.add db f;
  let osd = Tools.Baseline.osd db in
  (match osd.Tools.Baseline.run ~bytecode:"" ~selector:(Abi.Funsig.selector f) with
  | Tools.Baseline.Recovered [ Abi.Abity.Address ] -> ()
  | _ -> Alcotest.fail "OSD should recover from db");
  match osd.Tools.Baseline.run ~bytecode:"" ~selector:"\x00\x00\x00\x00" with
  | Tools.Baseline.Not_recovered -> ()
  | _ -> Alcotest.fail "OSD must miss unknown ids"

let test_eveem_heuristic () =
  (* all-basic signatures are exactly what the shallow rules can do *)
  let fsig = Abi.Funsig.make "basics" [ Abi.Abity.Uint 8; Abi.Abity.Address ] in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  (match
     Tools.Baseline.eveem_heuristic ~bytecode:code
       ~selector:(Abi.Funsig.selector fsig)
   with
  | Tools.Baseline.Recovered tys ->
    Alcotest.(check string) "basics recovered" "uint8,address"
      (String.concat "," (List.map Abi.Abity.to_string tys))
  | _ -> Alcotest.fail "expected recovery");
  (* arrays defeat the shallow rules: the head slot reads as a word *)
  let fsig2 =
    Abi.Funsig.make "withArray" [ Abi.Abity.Darray (Abi.Abity.Uint 8) ]
  in
  let code2 = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig2) in
  match
    Tools.Baseline.eveem_heuristic ~bytecode:code2
      ~selector:(Abi.Funsig.selector fsig2)
  with
  | Tools.Baseline.Recovered tys ->
    Alcotest.(check bool) "array mis-typed" false
      (tys = [ Abi.Abity.Darray (Abi.Abity.Uint 8) ])
  | _ -> ()

let test_gigahorse_aborts_deterministic () =
  let db = Tools.Efsd.create () in
  let gh = Tools.Baseline.gigahorse db in
  let fsig = Abi.Funsig.make "anything" [ Abi.Abity.Bool ] in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  let r1 = gh.Tools.Baseline.run ~bytecode:code ~selector:(Abi.Funsig.selector fsig) in
  let r2 = gh.Tools.Baseline.run ~bytecode:code ~selector:(Abi.Funsig.selector fsig) in
  Alcotest.(check bool) "deterministic" true (r1 = r2)

(* -- ParChecker ----------------------------------------------------------- *)

let transfer_params = [ Abi.Abity.Address; Abi.Abity.Uint 256 ]

let encode_transfer addr amount =
  Abi.Encode.encode_call
    ~selector:(Keccak.selector "transfer(address,uint256)")
    transfer_params
    [ Abi.Value.VAddr addr; Abi.Value.VUint amount ]

let test_parchecker_valid () =
  let cd = encode_transfer (U256.of_hex "0x1234") (U256.of_int 1000) in
  match Tools.Parchecker.check_call transfer_params cd with
  | Tools.Parchecker.Valid -> ()
  | Tools.Parchecker.Invalid r -> Alcotest.failf "valid rejected: %s" r

let test_parchecker_detects_bad_address () =
  (* nonzero high bytes in the address slot *)
  let cd = Bytes.of_string (encode_transfer (U256.of_hex "0x1234") U256.one) in
  Bytes.set cd 5 '\xff';
  match Tools.Parchecker.check_call transfer_params (Bytes.to_string cd) with
  | Tools.Parchecker.Invalid _ -> ()
  | Tools.Parchecker.Valid -> Alcotest.fail "bad address accepted"

let test_parchecker_detects_bad_bool () =
  let params = [ Abi.Abity.Bool ] in
  let cd = "\x00\x00\x00\x00" ^ U256.to_bytes_be (U256.of_int 2) in
  match Tools.Parchecker.check_call params cd with
  | Tools.Parchecker.Invalid _ -> ()
  | Tools.Parchecker.Valid -> Alcotest.fail "bool=2 accepted"

let test_parchecker_detects_bad_int_extension () =
  let params = [ Abi.Abity.Int 8 ] in
  (* -1 as int8 must be all-ones; a half-extended word is invalid *)
  let bad = U256.logor (U256.of_int 0xff) (U256.shift_left U256.one 128) in
  let cd = "\x00\x00\x00\x00" ^ U256.to_bytes_be bad in
  match Tools.Parchecker.check_call params cd with
  | Tools.Parchecker.Invalid _ -> ()
  | Tools.Parchecker.Valid -> Alcotest.fail "bad sign extension accepted"

let test_parchecker_detects_bytes_padding () =
  let params = [ Abi.Abity.Bytes ] in
  let good =
    "\x00\x00\x00\x00"
    ^ Abi.Encode.encode_args params [ Abi.Value.VBytes "abc" ]
  in
  (match Tools.Parchecker.check_call params good with
  | Tools.Parchecker.Valid -> ()
  | Tools.Parchecker.Invalid r -> Alcotest.failf "valid bytes rejected: %s" r);
  let bad = Bytes.of_string good in
  Bytes.set bad (String.length good - 1) '\x01';
  match Tools.Parchecker.check_call params (Bytes.to_string bad) with
  | Tools.Parchecker.Invalid _ -> ()
  | Tools.Parchecker.Valid -> Alcotest.fail "dirty padding accepted"

let test_parchecker_truncation () =
  let cd = encode_transfer (U256.of_hex "0x1234") U256.one in
  let cut = String.sub cd 0 (String.length cd - 40) in
  match Tools.Parchecker.check_call transfer_params cut with
  | Tools.Parchecker.Invalid _ -> ()
  | Tools.Parchecker.Valid -> Alcotest.fail "truncated accepted"

let test_short_address_attack () =
  (* address ends in a zero byte; the attacker drops it *)
  let addr = U256.shift_left (U256.of_hex "0x123456") 8 in
  let cd = encode_transfer addr (U256.of_int 0x2710) in
  let attack = String.sub cd 0 (String.length cd - 1) in
  Alcotest.(check bool) "attack detected" true
    (Tools.Parchecker.is_short_address_attack transfer_params attack);
  Alcotest.(check bool) "full-length call not flagged" false
    (Tools.Parchecker.is_short_address_attack transfer_params cd);
  (* a signature without the trailing (address, uint256) is not a
     candidate *)
  Alcotest.(check bool) "other signature not flagged" false
    (Tools.Parchecker.is_short_address_attack [ Abi.Abity.Bool ] attack)

let prop_parchecker_accepts_valid =
  let rng = Random.State.make [| 2718 |] in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"spec encodings always validate" ~count:250
       (QCheck.make
          ~print:Abi.Abity.to_string
          (QCheck.Gen.map
             (fun () -> Abi.Valgen.sol_type ~abiv2:true rng)
             QCheck.Gen.unit))
       (fun ty ->
         let v = Abi.Valgen.value rng ty in
         let cd =
           "\x00\x00\x00\x2a" ^ Abi.Encode.encode_args [ ty ] [ v ]
         in
         Tools.Parchecker.check_call [ ty ] cd = Tools.Parchecker.Valid))

(* -- fuzzer ---------------------------------------------------------------- *)

let fuzz_sample () = List.hd (Solc.Corpus.fuzz_set ~seed:17 ~n:1)

let test_fuzzer_dictionary () =
  let s = fuzz_sample () in
  let dict = Tools.Fuzzer.dictionary s.Solc.Corpus.code in
  Alcotest.(check bool) "dictionary harvested" true (List.length dict > 0)

let test_fuzzer_budget_respected () =
  let s = fuzz_sample () in
  let fsig = Solc.Corpus.truth s in
  let rng = Random.State.make [| 3 |] in
  let r =
    Tools.Fuzzer.run_campaign ~budget:5 ~rng ~code:s.Solc.Corpus.code
      ~selector:(Abi.Funsig.selector fsig) Tools.Fuzzer.Raw
  in
  Alcotest.(check bool) "at most 5 executions" true (r.Tools.Fuzzer.executions <= 5)

let test_fuzzer_finds_deep_bug_with_signature () =
  (* a deep (magic-equality) bug must be reachable via the dictionary
     when the signature is known *)
  let fsig = Abi.Funsig.make "deep" [ Abi.Abity.Uint 256 ] in
  let magic = Evm.U256.of_hex "0x1122334455667788" in
  let fn =
    Solc.Lang.fn ~bug:(Solc.Lang.Deep magic) fsig
      [ Solc.Lang.param (Abi.Abity.Uint 256) ]
  in
  let code = Solc.Compile.compile_fn fn in
  let rng = Random.State.make [| 4 |] in
  let r =
    Tools.Fuzzer.run_campaign ~budget:200 ~rng ~code
      ~selector:(Abi.Funsig.selector fsig)
      (Tools.Fuzzer.Signature_aware [ Abi.Abity.Uint 256 ])
  in
  Alcotest.(check bool) "deep bug found" true r.Tools.Fuzzer.bug_found;
  (* and is out of reach for the raw fuzzer *)
  let rng = Random.State.make [| 4 |] in
  let r =
    Tools.Fuzzer.run_campaign ~budget:200 ~rng ~code
      ~selector:(Abi.Funsig.selector fsig) Tools.Fuzzer.Raw
  in
  Alcotest.(check bool) "deep bug hidden from raw fuzzer" false
    r.Tools.Fuzzer.bug_found

let test_fuzzer_clean_contract_no_bug () =
  let fsig = Abi.Funsig.make "clean" [ Abi.Abity.Uint 256 ] in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  let rng = Random.State.make [| 5 |] in
  let r =
    Tools.Fuzzer.run_campaign ~budget:100 ~rng ~code
      ~selector:(Abi.Funsig.selector fsig)
      (Tools.Fuzzer.Signature_aware [ Abi.Abity.Uint 256 ])
  in
  Alcotest.(check bool) "no false bug" false r.Tools.Fuzzer.bug_found

(* -- Erays / Erays+ --------------------------------------------------------- *)

let test_coverage_fuzzer () =
  (* the coverage-guided mode finds deep bugs at least as reliably as
     plain signature-aware generation *)
  let fsig = Abi.Funsig.make "cov" [ Abi.Abity.Uint 256 ] in
  let magic = Evm.U256.of_hex "0xfeedface" in
  let fn =
    Solc.Lang.fn ~bug:(Solc.Lang.Deep magic) fsig
      [ Solc.Lang.param (Abi.Abity.Uint 256) ]
  in
  let code = Solc.Compile.compile_fn fn in
  let rng = Random.State.make [| 6 |] in
  let r =
    Tools.Fuzzer.run_coverage_campaign ~budget:200 ~rng ~code
      ~selector:(Abi.Funsig.selector fsig) [ Abi.Abity.Uint 256 ]
  in
  Alcotest.(check bool) "coverage mode finds the bug" true
    r.Tools.Fuzzer.bug_found

let test_ablation_config () =
  (* disabling fine masks must demote a uint8 to the uint256 default *)
  let fsig = Abi.Funsig.make "abl" [ Abi.Abity.Uint 8 ] in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  let no_masks =
    { Sigrec.Rules.default_config with Sigrec.Rules.fine_masks = false }
  in
  (match Sigrec.Recover.recover ~config:no_masks code with
  | [ r ] ->
    Alcotest.(check string) "uint8 demoted" "uint256"
      (Sigrec.Recover.type_list r)
  | _ -> Alcotest.fail "expected one function");
  (* disabling guard dims must flatten an external static array *)
  let fsig2 =
    Abi.Funsig.make ~visibility:Abi.Funsig.External "abl2"
      [ Abi.Abity.Sarray (Abi.Abity.Uint 256, 3) ]
  in
  let code2 = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig2) in
  let no_guards =
    { Sigrec.Rules.default_config with Sigrec.Rules.guard_dims = false }
  in
  match Sigrec.Recover.recover ~config:no_guards code2 with
  | [ r ] ->
    Alcotest.(check bool) "array lost without guards" true
      (Sigrec.Recover.type_list r <> "uint256[3]")
  | _ -> Alcotest.fail "expected one function"

let test_erays_lift () =
  let fsig =
    Abi.Funsig.make "lifted" [ Abi.Abity.Darray (Abi.Abity.Uint 8) ]
  in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  match Tools.Erays.lift code with
  | [ fn ] ->
    Alcotest.(check bool) "has statements" true (Tools.Erays.line_count fn > 5);
    Alcotest.(check bool) "reads calldata somewhere" true
      (List.exists (fun s -> s.Tools.Erays.reads_calldata) fn.Tools.Erays.stmts)
  | fns -> Alcotest.failf "expected one function, got %d" (List.length fns)

let test_eraysplus_metrics () =
  let fsig =
    Abi.Funsig.make "enhanced"
      [ Abi.Abity.Darray (Abi.Abity.Uint 8); Abi.Abity.Address ]
  in
  let code = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  match Tools.Eraysplus.enhance code with
  | [ e ] ->
    Alcotest.(check int) "types added per param" 2 e.Tools.Eraysplus.added_types;
    Alcotest.(check bool) "names added" true (e.Tools.Eraysplus.added_arg_names >= 2);
    Alcotest.(check bool) "lines removed" true (e.Tools.Eraysplus.removed_lines > 0);
    Alcotest.(check bool) "header carries the signature" true
      (e.Tools.Eraysplus.header <> "");
    (* the rewritten body references the parameter names *)
    Alcotest.(check bool) "argN appears in body" true
      (List.exists
         (fun line ->
           let has needle =
             let n = String.length line and m = String.length needle in
             let rec go i = i + m <= n && (String.sub line i m = needle || go (i + 1)) in
             go 0
           in
           has "arg1" || has "arg2")
         e.Tools.Eraysplus.stmts)
  | es -> Alcotest.failf "expected one function, got %d" (List.length es)

let suite =
  [
    Alcotest.test_case "efsd" `Quick test_efsd;
    Alcotest.test_case "db tools" `Quick test_db_tools;
    Alcotest.test_case "eveem heuristic" `Quick test_eveem_heuristic;
    Alcotest.test_case "gigahorse deterministic" `Quick test_gigahorse_aborts_deterministic;
    Alcotest.test_case "parchecker valid" `Quick test_parchecker_valid;
    Alcotest.test_case "parchecker bad address" `Quick test_parchecker_detects_bad_address;
    Alcotest.test_case "parchecker bad bool" `Quick test_parchecker_detects_bad_bool;
    Alcotest.test_case "parchecker bad sign extension" `Quick test_parchecker_detects_bad_int_extension;
    Alcotest.test_case "parchecker bytes padding" `Quick test_parchecker_detects_bytes_padding;
    Alcotest.test_case "parchecker truncation" `Quick test_parchecker_truncation;
    Alcotest.test_case "short address attack" `Quick test_short_address_attack;
    prop_parchecker_accepts_valid;
    Alcotest.test_case "fuzzer dictionary" `Quick test_fuzzer_dictionary;
    Alcotest.test_case "fuzzer budget" `Quick test_fuzzer_budget_respected;
    Alcotest.test_case "deep bug needs signature" `Quick test_fuzzer_finds_deep_bug_with_signature;
    Alcotest.test_case "clean contract no bug" `Quick test_fuzzer_clean_contract_no_bug;
    Alcotest.test_case "coverage-guided fuzzer" `Quick test_coverage_fuzzer;
    Alcotest.test_case "ablation config" `Quick test_ablation_config;
    Alcotest.test_case "erays lift" `Quick test_erays_lift;
    Alcotest.test_case "erays+ metrics" `Quick test_eraysplus_metrics;
  ]
