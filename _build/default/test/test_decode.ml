(* The ABI decoder: hand-checked layouts, error reporting, and the
   decode-after-encode identity over random typed values. *)

open Evm

let rec value_equal a b =
  match (a, b) with
  | Abi.Value.VUint x, Abi.Value.VUint y
  | Abi.Value.VInt x, Abi.Value.VInt y
  | Abi.Value.VAddr x, Abi.Value.VAddr y
  | Abi.Value.VDecimal x, Abi.Value.VDecimal y ->
    U256.equal x y
  | Abi.Value.VBool x, Abi.Value.VBool y -> x = y
  | Abi.Value.VFixed x, Abi.Value.VFixed y
  | Abi.Value.VBytes x, Abi.Value.VBytes y
  | Abi.Value.VString x, Abi.Value.VString y ->
    String.equal x y
  | Abi.Value.VArray xs, Abi.Value.VArray ys
  | Abi.Value.VTuple xs, Abi.Value.VTuple ys ->
    List.length xs = List.length ys && List.for_all2 value_equal xs ys
  | _ -> false

let test_decode_simple () =
  let tys = [ Abi.Abity.Address; Abi.Abity.Uint 256 ] in
  let vs =
    [ Abi.Value.VAddr (U256.of_hex "0x1234"); Abi.Value.VUint (U256.of_int 42) ]
  in
  let cd = Abi.Encode.encode_call ~selector:"\xaa\xbb\xcc\xdd" tys vs in
  match Abi.Decode.decode_call tys cd with
  | Ok (sel, got) ->
    Alcotest.(check string) "selector" "\xaa\xbb\xcc\xdd" sel;
    Alcotest.(check bool) "values" true (List.for_all2 value_equal vs got)
  | Error e -> Alcotest.fail e

let test_decode_truncated () =
  let tys = [ Abi.Abity.Bytes ] in
  let cd =
    "\x00\x00\x00\x00"
    ^ Abi.Encode.encode_args tys [ Abi.Value.VBytes "hello world" ]
  in
  let cut = String.sub cd 0 (String.length cd - 40) in
  match Abi.Decode.decode_call tys cut with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated bytes decoded"

let test_decode_absurd_offset () =
  let tys = [ Abi.Abity.Darray (Abi.Abity.Uint 256) ] in
  let cd = "\x00\x00\x00\x00" ^ U256.to_bytes_be U256.max_int in
  match Abi.Decode.decode_call tys cd with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "absurd offset decoded"

let test_decode_masks_dirty_padding () =
  (* decoding is EVM-lenient: dirty padding is masked off *)
  let w = U256.logor (U256.of_int 0x7f) (U256.shift_left U256.one 200) in
  let cd = "\x00\x00\x00\x00" ^ U256.to_bytes_be w in
  match Abi.Decode.decode_call [ Abi.Abity.Uint 8 ] cd with
  | Ok (_, [ Abi.Value.VUint v ]) ->
    Alcotest.(check bool) "masked to uint8" true (U256.equal v (U256.of_int 0x7f))
  | _ -> Alcotest.fail "expected a masked uint8"

let prop_roundtrip =
  let rng = Random.State.make [| 31415 |] in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"decode after encode is the identity" ~count:400
       (QCheck.make
          ~print:(fun tys ->
            String.concat "," (List.map Abi.Abity.to_string tys))
          (QCheck.Gen.map
             (fun n ->
               List.init (1 + (n mod 4)) (fun _ ->
                   Abi.Valgen.sol_type ~abiv2:true rng))
             QCheck.Gen.small_nat))
       (fun tys ->
         let vs = List.map (Abi.Valgen.value rng) tys in
         let cd = Abi.Encode.encode_call ~selector:"\x01\x02\x03\x04" tys vs in
         match Abi.Decode.decode_call tys cd with
         | Ok (_, got) -> List.for_all2 value_equal vs got
         | Error _ -> false))

let prop_roundtrip_vyper =
  let rng = Random.State.make [| 2719 |] in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"vyper decode roundtrip" ~count:200
       (QCheck.make
          ~print:Abi.Abity.to_string
          (QCheck.Gen.map (fun () -> Abi.Valgen.vy_type rng) QCheck.Gen.unit))
       (fun ty ->
         let v = Abi.Valgen.value rng ty in
         let cd =
           "\x0a\x0b\x0c\x0d" ^ Abi.Encode.encode_args [ ty ] [ v ]
         in
         match Abi.Decode.decode_call [ ty ] cd with
         | Ok (_, [ got ]) -> value_equal v got
         | _ -> false))

let suite =
  [
    Alcotest.test_case "decode simple" `Quick test_decode_simple;
    Alcotest.test_case "decode truncated" `Quick test_decode_truncated;
    Alcotest.test_case "decode absurd offset" `Quick test_decode_absurd_offset;
    Alcotest.test_case "decode masks dirty padding" `Quick test_decode_masks_dirty_padding;
    prop_roundtrip;
    prop_roundtrip_vyper;
  ]
