test/test_aggregate.ml: Abi Alcotest List Printf Sigrec Solc
