test/test_symex.ml: Alcotest Asm Evm Hashtbl List Opcode Symex U256
