test/test_keccak.ml: Alcotest Evm Gen Hex Keccak QCheck QCheck_alcotest String
