test/test_foreign.ml: Alcotest Asm Evm Keccak List Opcode Printf Sigrec U256
