test/test_ids.ml: Abi Alcotest Evm List Printf Sigrec Solc String
