test/test_interp.ml: Alcotest Asm Evm Int64 Interp Keccak List Machine Opcode QCheck QCheck_alcotest String U256
