test/test_machine.ml: Alcotest Evm List Machine String U256
