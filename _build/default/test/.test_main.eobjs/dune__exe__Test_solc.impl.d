test/test_solc.ml: Abi Alcotest Disasm Evm Hex Interp List Opcode Printf Random Sigrec Solc String Tools U256
