test/test_abi.ml: Abi Abity Alcotest Evm List QCheck QCheck_alcotest Random String U256 Value
