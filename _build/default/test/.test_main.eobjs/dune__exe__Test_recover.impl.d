test/test_recover.ml: Abi Alcotest Evm List Printf QCheck QCheck_alcotest Random Sigrec Solc String
