test/test_corpus.ml: Abi Alcotest Evm List Printf Random Sigrec Solc String
