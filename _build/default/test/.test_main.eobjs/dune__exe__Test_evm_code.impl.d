test/test_evm_code.ml: Alcotest Asm Cfg Disasm Evm Hashtbl Interp List Opcode Option String U256
