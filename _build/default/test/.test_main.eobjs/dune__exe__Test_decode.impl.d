test/test_decode.ml: Abi Alcotest Evm List QCheck QCheck_alcotest Random String U256
