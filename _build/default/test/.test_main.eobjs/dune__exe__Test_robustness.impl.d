test/test_robustness.ml: Abi Alcotest Asm Bytes Char Evm List Opcode Printexc Printf Random Sigrec Solc String Symex Tools
