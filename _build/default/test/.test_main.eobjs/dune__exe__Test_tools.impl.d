test/test_tools.ml: Abi Alcotest Bytes Evm Keccak List Printf QCheck QCheck_alcotest Random Sigrec Solc String Tools U256
