test/test_u256.ml: Alcotest Evm List QCheck QCheck_alcotest String U256
