examples/short_address.ml: Abi Evm Format List Printf Sigrec Solc String Tools U256
