examples/fuzz_campaign.ml: Abi List Printf Random Sigrec Solc Tools
