examples/quickstart.mli:
