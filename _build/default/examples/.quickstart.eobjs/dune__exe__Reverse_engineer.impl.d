examples/reverse_engineer.ml: Abi Format List Printf Solc Tools
