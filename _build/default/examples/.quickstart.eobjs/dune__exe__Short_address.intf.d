examples/short_address.mli:
