examples/quickstart.ml: Abi Format List Printf Sigrec Solc String
