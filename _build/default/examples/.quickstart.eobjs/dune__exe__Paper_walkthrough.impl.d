examples/paper_walkthrough.ml: Abi Evm Format Hashtbl List Printf Sigrec Solc String Symex
