(* Quickstart: compile an ERC-20-style token contract with the bundled
   synthetic compiler, then recover all of its function signatures from
   the bytecode alone.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A token contract with the classic ERC-20 entry points. The
     compiler only sees the signatures; SigRec only sees the bytecode. *)
  let open Abi.Abity in
  let contract =
    Solc.Compile.contract_of_sigs
      [
        Abi.Funsig.make "transfer" [ Address; Uint 256 ];
        Abi.Funsig.make "approve" [ Address; Uint 256 ];
        Abi.Funsig.make "transferFrom" [ Address; Address; Uint 256 ];
        Abi.Funsig.make "balanceOf" [ Address ];
        Abi.Funsig.make ~visibility:Abi.Funsig.External "batchTransfer"
          [ Darray Address; Darray (Uint 256) ];
        Abi.Funsig.make "setMetadata" [ String_t; Bytes ];
      ]
  in
  let bytecode = Solc.Compile.compile contract in
  Printf.printf "compiled runtime bytecode: %d bytes\n\n"
    (String.length bytecode);

  (* Recover the signatures: function ids plus full parameter types. *)
  let recovered = Sigrec.Recover.recover bytecode in
  Printf.printf "recovered %d function signatures:\n" (List.length recovered);
  List.iter (fun r -> Format.printf "  %a@." Sigrec.Recover.pp r) recovered;

  (* Check them against the ground truth we compiled from. *)
  Printf.printf "\nground truth check:\n";
  List.iter
    (fun fn ->
      let fsig = fn.Solc.Lang.fsig in
      let sel = Abi.Funsig.selector fsig in
      match
        List.find_opt (fun r -> r.Sigrec.Recover.selector = sel) recovered
      with
      | Some r ->
        let want =
          String.concat "," (List.map Abi.Abity.to_string fsig.Abi.Funsig.params)
        in
        let got = Sigrec.Recover.type_list r in
        Printf.printf "  %-40s %s\n" (Abi.Funsig.canonical fsig)
          (if got = want then "recovered exactly" else "MISMATCH: " ^ got)
      | None ->
        Printf.printf "  %-40s NOT FOUND\n" (Abi.Funsig.canonical fsig))
    contract.Solc.Compile.fns
