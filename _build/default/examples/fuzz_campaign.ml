(* Fuzzing with recovered signatures (paper §6.2): the same fuzzer,
   the same budget, with and without knowing the parameter types.

   Run with: dune exec examples/fuzz_campaign.exe *)

let () =
  let n = 40 in
  let samples = Solc.Corpus.fuzz_set ~seed:2024 ~n in
  Printf.printf
    "fuzzing %d contracts with planted traps, budget 96 executions each\n\n" n;
  let with_sig = ref 0 and without = ref 0 in
  List.iteri
    (fun i sample ->
      let code = sample.Solc.Corpus.code in
      let fsig = Solc.Corpus.truth sample in
      (* ContractFuzzer: first recover the signature from bytecode,
         then generate well-typed arguments *)
      let recovered = List.hd (Sigrec.Recover.recover code) in
      let rng = Random.State.make [| 42; i |] in
      let aware =
        Tools.Fuzzer.run_campaign ~rng ~code
          ~selector:recovered.Sigrec.Recover.selector
          (Tools.Fuzzer.Signature_aware recovered.Sigrec.Recover.params)
      in
      (* ContractFuzzer-: same fuzzer, random byte sequences *)
      let rng = Random.State.make [| 42; i |] in
      let raw =
        Tools.Fuzzer.run_campaign ~rng ~code
          ~selector:(Abi.Funsig.selector fsig) Tools.Fuzzer.Raw
      in
      if aware.Tools.Fuzzer.bug_found then incr with_sig;
      if raw.Tools.Fuzzer.bug_found then incr without;
      if i < 10 then
        Printf.printf "  %-28s signature-aware: %-12s raw: %s\n"
          (Abi.Funsig.canonical fsig)
          (match aware.Tools.Fuzzer.first_hit with
          | Some k -> Printf.sprintf "hit @%d" k
          | None -> "no hit")
          (match raw.Tools.Fuzzer.first_hit with
          | Some k -> Printf.sprintf "hit @%d" k
          | None -> "no hit"))
    samples;
  Printf.printf "\nbugs found with recovered signatures:    %d/%d\n" !with_sig n;
  Printf.printf "bugs found with raw byte-sequence input: %d/%d\n" !without n;
  if !without > 0 then
    Printf.printf "improvement: +%.0f%% (paper reports +23%%)\n"
      (100.0 *. float (!with_sig - !without) /. float !without)
