(* Attack detection (paper §6.1): recover the signature of a token's
   transfer function and use ParChecker to vet incoming call data,
   catching a short address attack that would shift the token amount.

   Run with: dune exec examples/short_address.exe *)

open Evm

let () =
  let fsig =
    Abi.Funsig.make "transfer" [ Abi.Abity.Address; Abi.Abity.Uint 256 ]
  in
  let bytecode = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in

  (* Step 1: the defender only has the bytecode; recover the signature. *)
  let recovered = List.hd (Sigrec.Recover.recover bytecode) in
  Format.printf "recovered: %a@." Sigrec.Recover.pp recovered;
  let params = recovered.Sigrec.Recover.params in

  (* Step 2: a legitimate transfer(to, 0x2710). *)
  let to_addr = U256.of_hex "0x1234567890abcdef1234567890abcdef12345600" in
  let amount = U256.of_int 0x2710 in
  let good =
    Abi.Encode.encode_call
      ~selector:recovered.Sigrec.Recover.selector params
      [ Abi.Value.VAddr to_addr; Abi.Value.VUint amount ]
  in
  (match Tools.Parchecker.check_call params good with
  | Tools.Parchecker.Valid -> Printf.printf "legitimate call data: valid\n"
  | Tools.Parchecker.Invalid r -> Printf.printf "unexpected: %s\n" r);

  (* Step 3: the attack: the address ends in a zero byte, the attacker
     omits it, and EVM silently complements it from the amount's high
     byte, multiplying the amount by 256 (0x2710 -> 0x271000). *)
  let attack = String.sub good 0 (String.length good - 1) in
  Printf.printf "\nattacker sends %d bytes instead of %d\n"
    (String.length attack) (String.length good);
  (match Tools.Parchecker.check_call params attack with
  | Tools.Parchecker.Valid -> Printf.printf "attack call data: NOT caught\n"
  | Tools.Parchecker.Invalid r ->
    Printf.printf "attack call data: rejected (%s)\n" r);
  if Tools.Parchecker.is_short_address_attack params attack then
    Printf.printf "short address attack pattern: DETECTED\n";

  (* Step 4: without the recovered signature the check is impossible:
     the raw byte string gives no way to know where the address ends. *)
  Printf.printf
    "\nwithout the signature, the %d-byte payload is just opaque bytes —\n\
     the checker cannot know an address field was truncated.\n"
    (String.length attack)
