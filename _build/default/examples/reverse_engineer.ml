(* Reverse engineering (paper §6.3): lift bytecode to readable IR with
   the Erays-style lifter, then enhance the output with the recovered
   function signatures (Erays+): typed parameters, meaningful names,
   and collapsed parameter-access boilerplate.

   Run with: dune exec examples/reverse_engineer.exe *)

let () =
  let fsig =
    Abi.Funsig.make "airdrop"
      [ Abi.Abity.Darray (Abi.Abity.Uint 8); Abi.Abity.Address ]
  in
  let bytecode = Solc.Compile.compile_fn (Solc.Lang.fn_of_sig fsig) in
  Printf.printf "source signature (hidden from the tools): %s\n\n"
    (Abi.Funsig.canonical fsig);

  (* plain Erays output: untyped registers, raw offset arithmetic *)
  Printf.printf "--- Erays (no signatures) ---\n";
  List.iter
    (fun (fn : Tools.Erays.lifted_fn) ->
      Printf.printf "function 0x%s {\n" fn.Tools.Erays.selector_hex;
      List.iter
        (fun (s : Tools.Erays.stmt) -> Printf.printf "  %s\n" s.Tools.Erays.text)
        fn.Tools.Erays.stmts;
      Printf.printf "}\n")
    (Tools.Erays.lift bytecode);

  (* Erays+ output: recovered signature drives renaming and folding *)
  Printf.printf "\n--- Erays+ (with recovered signatures) ---\n";
  List.iter
    (fun e ->
      Format.printf "%a" Tools.Eraysplus.pp e;
      Printf.printf
        "\nreadability deltas: +%d types, +%d parameter names, +%d num \
         names, -%d lines of access code\n"
        e.Tools.Eraysplus.added_types e.Tools.Eraysplus.added_arg_names
        e.Tools.Eraysplus.added_num_names e.Tools.Eraysplus.removed_lines)
    (Tools.Eraysplus.enhance bytecode)
