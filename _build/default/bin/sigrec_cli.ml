(* The sigrec command-line tool: recover function signatures from EVM
   runtime bytecode, check call data against them, or lift bytecode to
   readable IR. *)

let read_bytecode input =
  let raw =
    if input = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_bin input In_channel.input_all
  in
  let trimmed = String.trim raw in
  if Evm.Hex.is_valid trimmed then Evm.Hex.decode trimmed else raw

let recover_cmd input show_stats explain =
  let bytecode = read_bytecode input in
  let stats = Hashtbl.create 31 in
  let recovered = Sigrec.Recover.recover ~stats bytecode in
  if recovered = [] then
    Printf.printf "no public/external functions found\n"
  else
    List.iter
      (fun r ->
        Format.printf "%a@." Sigrec.Recover.pp r;
        if explain then
          List.iteri
            (fun i (ty, path) ->
              Format.printf "    arg%d %-14s via %s@." (i + 1)
                (Abi.Abity.to_string ty)
                (if path = [] then "-" else String.concat " -> " path))
            (List.combine r.Sigrec.Recover.params
               r.Sigrec.Recover.rule_paths))
      recovered;
  if show_stats then begin
    Format.printf "@.rule usage:@.";
    List.iter
      (fun name ->
        match Hashtbl.find_opt stats name with
        | Some n ->
          let doc =
            match Sigrec.Ruledoc.find name with
            | Some d -> d.Sigrec.Ruledoc.concludes
            | None -> ""
          in
          Format.printf "  %-4s %4d  %s@." name n doc
        | None -> ())
      Sigrec.Rules.all_rule_names
  end;
  0

let check_cmd input calldata_hex =
  let bytecode = read_bytecode input in
  let calldata = Evm.Hex.decode calldata_hex in
  if String.length calldata < 4 then begin
    Printf.eprintf "call data shorter than a function id\n";
    1
  end
  else begin
    let selector = String.sub calldata 0 4 in
    let recovered = Sigrec.Recover.recover bytecode in
    match
      List.find_opt (fun r -> r.Sigrec.Recover.selector = selector) recovered
    with
    | None ->
      Printf.printf "function id 0x%s not found in bytecode\n"
        (Evm.Hex.encode selector);
      1
    | Some r -> (
      Printf.printf "signature: ";
      Format.printf "%a@." Sigrec.Recover.pp r;
      match Tools.Parchecker.check_call r.Sigrec.Recover.params calldata with
      | Tools.Parchecker.Valid ->
        Printf.printf "arguments: valid\n";
        if
          Tools.Parchecker.is_short_address_attack r.Sigrec.Recover.params
            calldata
        then begin
          Printf.printf "WARNING: short address attack pattern\n";
          2
        end
        else 0
      | Tools.Parchecker.Invalid reason ->
        Printf.printf "arguments: INVALID (%s)\n" reason;
        if
          Tools.Parchecker.is_short_address_attack r.Sigrec.Recover.params
            calldata
        then Printf.printf "WARNING: short address attack pattern\n";
        2)
  end

let decode_cmd input calldata_hex =
  let bytecode = read_bytecode input in
  let calldata = Evm.Hex.decode calldata_hex in
  if String.length calldata < 4 then begin
    Printf.eprintf "call data shorter than a function id\n";
    1
  end
  else begin
    let selector = String.sub calldata 0 4 in
    match
      List.find_opt
        (fun r -> r.Sigrec.Recover.selector = selector)
        (Sigrec.Recover.recover bytecode)
    with
    | None ->
      Printf.printf "function id 0x%s not found in bytecode\n"
        (Evm.Hex.encode selector);
      1
    | Some r -> (
      match Abi.Decode.decode_call r.Sigrec.Recover.params calldata with
      | Ok (_, values) ->
        Format.printf "0x%s%a@." r.Sigrec.Recover.selector_hex
          Abi.Decode.pp_decoded
          (r.Sigrec.Recover.params, values);
        0
      | Error reason ->
        Printf.printf "cannot decode: %s\n" reason;
        1)
  end

let lift_cmd input plain =
  let bytecode = read_bytecode input in
  if plain then
    List.iter
      (fun (fn : Tools.Erays.lifted_fn) ->
        Printf.printf "function 0x%s {\n" fn.Tools.Erays.selector_hex;
        List.iter
          (fun (s : Tools.Erays.stmt) ->
            Printf.printf "  %s\n" s.Tools.Erays.text)
          fn.Tools.Erays.stmts;
        Printf.printf "}\n")
      (Tools.Erays.lift bytecode)
  else
    List.iter
      (fun e -> Format.printf "%a" Tools.Eraysplus.pp e)
      (Tools.Eraysplus.enhance bytecode);
  0

open Cmdliner

let input_arg =
  let doc = "File containing hex (or raw) runtime bytecode; - for stdin." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BYTECODE" ~doc)

let recover_term =
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print per-rule usage counts.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Show each parameter's path through the rule decision tree.")
  in
  Term.(const recover_cmd $ input_arg $ stats $ explain)

let check_term =
  let calldata =
    let doc = "Hex call data of the invocation to validate." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CALLDATA" ~doc)
  in
  Term.(const check_cmd $ input_arg $ calldata)

let lift_term =
  let plain =
    Arg.(
      value & flag
      & info [ "plain" ] ~doc:"Raw Erays output without signature-based enhancement.")
  in
  Term.(const lift_cmd $ input_arg $ plain)

let cmds =
  [
    Cmd.v
      (Cmd.info "recover"
         ~doc:"Recover the function signatures of all public/external functions.")
      recover_term;
    Cmd.v
      (Cmd.info "check"
         ~doc:"Validate call data against the recovered signature (ParChecker).")
      check_term;
    Cmd.v
      (Cmd.info "decode"
         ~doc:"Decode call data into typed arguments using the recovered signature.")
      (let calldata =
         let doc = "Hex call data of the invocation to decode." in
         Arg.(
           required & pos 1 (some string) None & info [] ~docv:"CALLDATA" ~doc)
       in
       Term.(const decode_cmd $ input_arg $ calldata));
    Cmd.v
      (Cmd.info "lift" ~doc:"Lift bytecode to readable IR (Erays+).")
      lift_term;
  ]

let () =
  let info =
    Cmd.info "sigrec" ~version:"1.0.0"
      ~doc:"Automatic recovery of function signatures in smart contracts"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
